/** @file Unit tests for the generic SRAM cache. */

#include <gtest/gtest.h>

#include "cache/sram_cache.hpp"

using namespace accord;
using namespace accord::cache;

namespace
{

SramCacheParams
tinyCache(unsigned ways = 2, std::uint64_t capacity = 4096)
{
    SramCacheParams p;
    p.name = "test";
    p.capacityBytes = capacity;
    p.ways = ways;
    p.replacement = "lru";
    return p;
}

} // namespace

TEST(SramCache, MissThenHit)
{
    SramCache cache(tinyCache());
    EXPECT_FALSE(cache.access(100, AccessType::Read).hit);
    EXPECT_TRUE(cache.access(100, AccessType::Read).hit);
    EXPECT_DOUBLE_EQ(cache.hitRatio().rate(), 0.5);
}

TEST(SramCache, WriteMarksDirtyAndEvictsDirty)
{
    SramCache cache(tinyCache(1, 64));     // 1 set, 1 way
    cache.access(5, AccessType::Write);
    const auto r = cache.access(5 + 1, AccessType::Read);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(r.evictedLine, 5u);
}

TEST(SramCache, CleanEvictionIsNotDirty)
{
    SramCache cache(tinyCache(1, 64));
    cache.access(5, AccessType::Read);
    const auto r = cache.access(6, AccessType::Read);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_FALSE(r.evictedDirty);
}

TEST(SramCache, WritebackTypeAllocatesDirty)
{
    SramCache cache(tinyCache());
    cache.access(9, AccessType::Writeback);
    auto dirty = cache.invalidate(9);
    ASSERT_TRUE(dirty.has_value());
    EXPECT_TRUE(*dirty);
}

TEST(SramCache, ProbeDoesNotAllocate)
{
    SramCache cache(tinyCache());
    EXPECT_FALSE(cache.probe(77));
    EXPECT_FALSE(cache.probe(77));
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(SramCache, InvalidateAbsentLine)
{
    SramCache cache(tinyCache());
    EXPECT_FALSE(cache.invalidate(123).has_value());
}

TEST(SramCache, MetadataRoundTrip)
{
    SramCache cache(tinyCache());
    cache.access(42, AccessType::Read);
    cache.setMetadata(42, 0xBEEF);
    EXPECT_EQ(cache.metadata(42), 0xBEEF);
}

TEST(SramCache, MetadataClearedOnRefill)
{
    SramCache cache(tinyCache(1, 64));
    cache.access(1, AccessType::Read);
    cache.setMetadata(1, 7);
    cache.access(2, AccessType::Read);  // evicts line 1
    cache.access(1, AccessType::Read);  // refills line 1
    EXPECT_EQ(cache.metadata(1), 0u);
}

TEST(SramCache, EvictedMetadataReported)
{
    SramCache cache(tinyCache(1, 64));
    cache.access(1, AccessType::Write);
    cache.setMetadata(1, 0x55);
    const auto r = cache.access(2, AccessType::Read);
    EXPECT_EQ(r.evictedMeta, 0x55);
}

TEST(SramCache, LruOrderWithinSet)
{
    SramCache cache(tinyCache(2, 128));    // 1 set, 2 ways
    cache.access(10, AccessType::Read);
    cache.access(11, AccessType::Read);
    cache.access(10, AccessType::Read);    // 11 is LRU now
    const auto r = cache.access(12, AccessType::Read);
    EXPECT_EQ(r.evictedLine, 11u);
}

TEST(SramCache, DistinctSetsDoNotConflict)
{
    SramCache cache(tinyCache(1, 128));    // 2 sets, 1 way
    cache.access(0, AccessType::Read);     // set 0
    cache.access(1, AccessType::Read);     // set 1
    EXPECT_TRUE(cache.probe(0));
    EXPECT_TRUE(cache.probe(1));
}

TEST(SramCacheDeath, MetadataOnAbsentLinePanics)
{
    SramCache cache(tinyCache());
    EXPECT_DEATH(cache.metadata(999), "absent");
}

TEST(SramCacheDeath, NonPow2SetsFatal)
{
    // 12288 bytes direct-mapped -> 192 sets, not a power of two.
    const SramCacheParams p = tinyCache(1, 12288);
    EXPECT_EXIT(SramCache cache(p), ::testing::ExitedWithCode(1),
                "power of two");
}

/** Property sweep over geometries: capacity is never exceeded and a
 *  working set smaller than one set's ways always fits. */
struct Geometry
{
    unsigned ways;
    std::uint64_t capacity;
};

class SramGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(SramGeometry, OccupancyNeverExceedsCapacity)
{
    const auto g = GetParam();
    SramCache cache(tinyCache(g.ways, g.capacity));
    for (LineAddr line = 0; line < 10000; ++line)
        cache.access(line * 7 + 3, AccessType::Read);
    EXPECT_LE(cache.validLines(), g.capacity / lineSize);
}

TEST_P(SramGeometry, ResidentSetFitsWithinWays)
{
    const auto g = GetParam();
    SramCache cache(tinyCache(g.ways, g.capacity));
    // Touch `ways` lines of one set repeatedly: all must stick.
    const std::uint64_t sets = cache.numSets();
    for (int round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < g.ways; ++i)
            cache.access(i * sets, AccessType::Read);
    }
    for (unsigned i = 0; i < g.ways; ++i)
        EXPECT_TRUE(cache.probe(i * sets));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SramGeometry,
    ::testing::Values(Geometry{1, 1024}, Geometry{2, 4096},
                      Geometry{4, 8192}, Geometry{8, 32768},
                      Geometry{16, 1 << 20}));

/** @file Unit tests for the text-table renderer. */

#include <gtest/gtest.h>

#include "common/table.hpp"

using namespace accord;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.row().cell("alpha").cell(std::uint64_t{42});
    t.row().cell("b").cell(std::uint64_t{7});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"a", "b"});
    t.row().cell("longtext").cell("x");
    t.row().cell("s").cell("y");
    const std::string out = t.render();
    // Both data rows must have equal length (padded).
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const auto nl = out.find('\n', pos);
        lines.push_back(out.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_EQ(lines.size(), 4u);    // header, rule, two rows
    EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(TextTable, DoubleFormatting)
{
    TextTable t({"v"});
    t.row().cell(3.14159, 2);
    EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(TextTable, PercentFormatting)
{
    TextTable t({"v"});
    t.row().percent(0.742);
    EXPECT_NE(t.render().find("74.2%"), std::string::npos);
}

TEST(TextTable, SignedAndUnsignedCells)
{
    TextTable t({"a", "b"});
    t.row().cell(std::int64_t{-5}).cell(123u);
    const std::string out = t.render();
    EXPECT_NE(out.find("-5"), std::string::npos);
    EXPECT_NE(out.find("123"), std::string::npos);
}

TEST(TextTableDeath, TooManyCells)
{
    TextTable t({"only"});
    t.row().cell("x");
    EXPECT_DEATH(t.cell("overflow"), "too many");
}

TEST(TextTableDeath, CellBeforeRow)
{
    TextTable t({"c"});
    EXPECT_DEATH(t.cell("x"), "row");
}

TEST(TextTableDeath, EmptyHeaderRejected)
{
    EXPECT_DEATH(TextTable({}), "column");
}

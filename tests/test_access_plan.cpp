/**
 * @file
 * Warm/timed equivalence over the shared access-plan core.
 *
 * Both execution shells of DramCacheController consume the same
 * AccessPlan from the same organization strategy, so replaying one
 * address sequence through warmRead()/warmWriteback() and through a
 * fully-drained timed read()/writeback() must produce identical
 * hit/miss, transfer, prediction, and writeback-routing counters for
 * EVERY lookup mode x organization x replacement combination.  This is
 * the regression net for the refactor that removed the duplicated
 * per-path lookup switches.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "controller_fixture.hpp"
#include "dramcache/access_plan.hpp"

namespace accord::test
{
namespace
{

using dramcache::DramCacheParams;
using dramcache::L4Replacement;
using dramcache::LookupMode;
using dramcache::Organization;

struct Combo
{
    const char *name;
    unsigned ways;
    LookupMode lookup;
    const char *policy;
    Organization org;
    L4Replacement replacement;
    bool dcpWayBits;
};

const Combo kCombos[] = {
    {"serial_rand", 4, LookupMode::Serial, "", Organization::SetAssoc,
     L4Replacement::Random, true},
    {"parallel_rand", 4, LookupMode::Parallel, "",
     Organization::SetAssoc, L4Replacement::Random, true},
    {"predicted_rand", 4, LookupMode::Predicted, "",
     Organization::SetAssoc, L4Replacement::Random, true},
    {"ideal_rand", 4, LookupMode::Ideal, "", Organization::SetAssoc,
     L4Replacement::Random, true},
    {"predicted_pws_gws", 4, LookupMode::Predicted, "pws+gws",
     Organization::SetAssoc, L4Replacement::Random, true},
    {"serial_sws", 4, LookupMode::Serial, "sws",
     Organization::SetAssoc, L4Replacement::Random, true},
    {"serial_lru", 4, LookupMode::Serial, "", Organization::SetAssoc,
     L4Replacement::Lru, true},
    {"dm", 1, LookupMode::Serial, "", Organization::SetAssoc,
     L4Replacement::Random, true},
    {"ca", 1, LookupMode::Serial, "", Organization::ColumnAssoc,
     L4Replacement::Random, true},
    {"serial_nodcp", 4, LookupMode::Serial, "", Organization::SetAssoc,
     L4Replacement::Random, false},
    {"ideal_nodcp", 4, LookupMode::Ideal, "", Organization::SetAssoc,
     L4Replacement::Random, false},
    {"ca_nodcp", 1, LookupMode::Serial, "", Organization::ColumnAssoc,
     L4Replacement::Random, false},
};

DramCacheParams
paramsFor(const Combo &combo)
{
    DramCacheParams params;
    params.capacityBytes = 1ULL << 18;  // 4096 lines: evictions happen
    params.ways = combo.ways;
    params.org = combo.org;
    params.lookup = combo.lookup;
    params.replacement = combo.replacement;
    params.dcpWayBits = combo.dcpWayBits;
    params.seed = 99;
    return params;
}

/** One op of the replayed sequence. */
struct Op
{
    bool isWriteback;
    LineAddr line;
};

/** Deterministic read/writeback mix over 4x the cache's line count. */
std::vector<Op>
makeSequence()
{
    Rng rng(0xacce55);
    std::vector<Op> ops;
    std::vector<LineAddr> touched;
    for (unsigned i = 0; i < 6000; ++i) {
        if (!touched.empty() && rng.below(4) == 0) {
            ops.push_back(
                {true, touched[rng.below(touched.size())]});
        } else {
            // Skewed: half the references land in a hot eighth of the
            // space so hits, misses, and evictions all occur.
            const std::uint64_t space = 4 * 4096;
            const LineAddr line = rng.below(2) == 0
                ? rng.below(space / 8)
                : rng.below(space);
            ops.push_back({false, line});
            touched.push_back(line);
        }
    }
    return ops;
}

/** Counter snapshot both shells must agree on. */
struct Snapshot
{
    std::uint64_t hits, misses, predHits, predTotal;
    std::uint64_t readXfers, writeXfers, nvmReads, nvmWrites;
    std::uint64_t wbToCache, wbToNvm, wbProbeXfers, wbDcpStale;
    std::uint64_t swaps, replUpdates, probeSamples;

    static Snapshot
    of(const dramcache::DramCacheStats &stats)
    {
        Snapshot s;
        s.hits = stats.readHits.hits();
        s.misses = stats.readHits.misses();
        s.predHits = stats.wayPrediction.hits();
        s.predTotal = stats.wayPrediction.total();
        s.readXfers = stats.cacheReadTransfers.value();
        s.writeXfers = stats.cacheWriteTransfers.value();
        s.nvmReads = stats.nvmReads.value();
        s.nvmWrites = stats.nvmWrites.value();
        s.wbToCache = stats.writebacksToCache.value();
        s.wbToNvm = stats.writebacksToNvm.value();
        s.wbProbeXfers = stats.writebackProbeTransfers.value();
        s.wbDcpStale = stats.dcpStaleWritebacks.value();
        s.swaps = stats.swaps.value();
        s.replUpdates = stats.replacementUpdateWrites.value();
        s.probeSamples = stats.probesPerRead.count();
        return s;
    }
};

TEST(AccessPlanEquivalence, WarmAndTimedAgreeOnEveryCombo)
{
    const std::vector<Op> ops = makeSequence();

    for (const Combo &combo : kCombos) {
        SCOPED_TRACE(combo.name);
        const DramCacheParams params = paramsFor(combo);

        MiniSystem warm(params, combo.policy);
        std::uint64_t warm_hits = 0;
        for (const Op &op : ops) {
            if (op.isWriteback)
                warm->warmWriteback(op.line);
            else
                warm_hits += warm->warmRead(op.line) ? 1 : 0;
        }

        // Timed replay, drained to quiescence after every op so the
        // sequence of tag states matches the warm replay exactly.
        MiniSystem timed(params, combo.policy);
        std::uint64_t timed_hits = 0;
        for (const Op &op : ops) {
            if (op.isWriteback)
                timed->writeback(op.line);
            else
                timed_hits += timed.readBlocking(op.line) ? 1 : 0;
            timed.eq.runUntil([] { return false; });
        }

        EXPECT_EQ(warm_hits, timed_hits);
        const Snapshot w = Snapshot::of(warm->stats());
        const Snapshot t = Snapshot::of(timed->stats());
        EXPECT_EQ(w.hits, t.hits);
        EXPECT_EQ(w.misses, t.misses);
        EXPECT_EQ(w.predHits, t.predHits);
        EXPECT_EQ(w.predTotal, t.predTotal);
        EXPECT_EQ(w.readXfers, t.readXfers);
        EXPECT_EQ(w.writeXfers, t.writeXfers);
        EXPECT_EQ(w.nvmReads, t.nvmReads);
        EXPECT_EQ(w.nvmWrites, t.nvmWrites);
        EXPECT_EQ(w.wbToCache, t.wbToCache);
        EXPECT_EQ(w.wbToNvm, t.wbToNvm);
        EXPECT_EQ(w.wbProbeXfers, t.wbProbeXfers);
        EXPECT_EQ(w.wbDcpStale, t.wbDcpStale);
        EXPECT_EQ(w.swaps, t.swaps);
        EXPECT_EQ(w.replUpdates, t.replUpdates);
        EXPECT_EQ(w.probeSamples, t.probeSamples);

        // Both replays must also leave a coherent model: no tag-store,
        // placement, DCP, or stats-identity violations.
        InvariantAuditor wa;
        warm->audit(wa);
        EXPECT_TRUE(wa.clean()) << wa.report();
        InvariantAuditor ta;
        timed->audit(ta);
        EXPECT_TRUE(ta.clean()) << ta.report();
    }
}

TEST(AccessPlanEquivalence, SequenceActuallyExercisesBothOutcomes)
{
    // Guard against the generator degenerating into all-hits or
    // all-misses, which would make the equivalence sweep vacuous.
    const DramCacheParams params = paramsFor(kCombos[0]);
    MiniSystem warm(params, "");
    for (const Op &op : makeSequence()) {
        if (op.isWriteback)
            warm->warmWriteback(op.line);
        else
            warm->warmRead(op.line);
    }
    const auto &stats = warm->stats();
    EXPECT_GT(stats.readHits.hits(), 100u);
    EXPECT_GT(stats.readHits.misses(), 100u);
    EXPECT_GT(stats.writebacksToCache.value(), 10u);
    EXPECT_GT(stats.writebacksToNvm.value(), 10u);
}

TEST(AccessPlan, HitTransfersFollowIssueShape)
{
    dramcache::AccessPlan plan;
    plan.probeCount = 4;

    plan.shape = dramcache::IssueShape::Chained;
    EXPECT_EQ(plan.hitTransfers(0), 1u);
    EXPECT_EQ(plan.hitTransfers(3), 4u);
    EXPECT_EQ(plan.missTransfers(), 4u);

    plan.shape = dramcache::IssueShape::Broadside;
    EXPECT_EQ(plan.hitTransfers(0), 4u);
    EXPECT_EQ(plan.hitTransfers(3), 4u);
    EXPECT_EQ(plan.missTransfers(), 4u);

    plan.shape = dramcache::IssueShape::Single;
    EXPECT_EQ(plan.hitTransfers(0), 1u);
    EXPECT_EQ(plan.missTransfers(), 1u);

    EXPECT_TRUE(dramcache::AccessPlan::predictedAt(0));
    EXPECT_FALSE(dramcache::AccessPlan::predictedAt(1));
}

} // namespace
} // namespace accord::test

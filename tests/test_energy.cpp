/** @file Unit tests for the energy model. */

#include <gtest/gtest.h>

#include "sim/energy.hpp"

using namespace accord;
using namespace accord::sim;

namespace
{

dram::DeviceStats
stats(std::uint64_t reads, std::uint64_t writes, std::uint64_t row_hits)
{
    dram::DeviceStats s;
    s.readsServed = reads;
    s.writesServed = writes;
    s.rowHits = row_hits;
    return s;
}

} // namespace

TEST(Energy, ZeroActivityIsBackgroundOnly)
{
    const auto e =
        computeEnergy(stats(0, 0, 0), stats(0, 0, 0), 3'000'000'000);
    EXPECT_DOUBLE_EQ(e.cacheEnergyJ, 0.0);
    EXPECT_DOUBLE_EQ(e.memEnergyJ, 0.0);
    EXPECT_NEAR(e.seconds, 1.0, 1e-9);
    EXPECT_NEAR(e.backgroundJ, 3.0, 1e-9);  // 2W + 1W for 1s
    EXPECT_NEAR(e.totalJ, 3.0, 1e-9);
}

TEST(Energy, RowHitsSkipActivationEnergy)
{
    const auto all_miss =
        computeEnergy(stats(1000, 0, 0), stats(0, 0, 0), 1000);
    const auto all_hit =
        computeEnergy(stats(1000, 0, 1000), stats(0, 0, 0), 1000);
    EXPECT_GT(all_miss.cacheEnergyJ, all_hit.cacheEnergyJ);
}

TEST(Energy, NvmWritesDominate)
{
    const auto reads =
        computeEnergy(stats(0, 0, 0), stats(1000, 0, 0), 1000);
    const auto writes =
        computeEnergy(stats(0, 0, 0), stats(0, 1000, 0), 1000);
    EXPECT_GT(writes.memEnergyJ, 3.0 * reads.memEnergyJ);
}

TEST(Energy, PowerIsEnergyOverTime)
{
    const auto e = computeEnergy(stats(1000, 500, 200),
                                 stats(100, 50, 0), 3'000'000);
    EXPECT_NEAR(e.powerW(), e.totalJ / e.seconds, 1e-12);
}

TEST(Energy, EdpIsEnergyTimesDelay)
{
    const auto e = computeEnergy(stats(1000, 500, 200),
                                 stats(100, 50, 0), 3'000'000);
    EXPECT_NEAR(e.edp(), e.totalJ * e.seconds, 1e-12);
}

TEST(Energy, MoreTrafficMoreEnergy)
{
    const auto small =
        computeEnergy(stats(100, 100, 50), stats(10, 10, 0), 1000);
    const auto large =
        computeEnergy(stats(1000, 1000, 500), stats(100, 100, 0), 1000);
    EXPECT_GT(large.totalJ, small.totalJ);
}

TEST(Energy, CustomParamsRespected)
{
    EnergyParams params;
    params.hbmBackgroundW = 0.0;
    params.nvmBackgroundW = 0.0;
    const auto e =
        computeEnergy(stats(0, 0, 0), stats(0, 0, 0), 3'000'000'000,
                      params);
    EXPECT_DOUBLE_EQ(e.totalJ, 0.0);
}

/** @file Integration tests for the full System and runner helpers. */

#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace accord;
using namespace accord::sim;

namespace
{

/** A small, fast configuration for integration tests. */
SystemConfig
fastConfig(const std::string &workload = "libq")
{
    SystemConfig config;
    config.workload = workload;
    config.numCores = 4;
    config.scale = 1024;
    config.warmPerCore = 20000;
    config.measurePerCore = 5000;
    config.timedPerCore = 800;
    return config;
}

} // namespace

TEST(System, FunctionalRunProducesMetrics)
{
    SystemConfig config = fastConfig();
    config.runTimed = false;
    const SystemMetrics m = runSystem(config);
    EXPECT_GT(m.hitRate, 0.3);
    EXPECT_LT(m.hitRate, 1.0);
    EXPECT_GT(m.transfersPerRead, 0.9);
    EXPECT_TRUE(m.coreIpc.empty());
}

TEST(System, TimedRunProducesIpc)
{
    const SystemMetrics m = runSystem(fastConfig());
    ASSERT_EQ(m.coreIpc.size(), 4u);
    for (const double ipc : m.coreIpc)
        EXPECT_GT(ipc, 0.0);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.energy.totalJ, 0.0);
    EXPECT_GT(m.hbmStats.readsServed, 0u);
}

TEST(System, DeterministicForSeed)
{
    const SystemMetrics a = runSystem(fastConfig());
    const SystemMetrics b = runSystem(fastConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.coreIpc, b.coreIpc);
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
}

TEST(System, SeedChangesOutcome)
{
    SystemConfig config = fastConfig();
    const SystemMetrics a = runSystem(config);
    config.seed = 999;
    const SystemMetrics b = runSystem(config);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(System, PolicyConfigurationTakesEffect)
{
    SystemConfig dm = fastConfig();
    dm.runTimed = false;

    SystemConfig accord = fastConfig();
    accord.runTimed = false;
    accord.ways = 2;
    accord.policySpec = "pws+gws";

    const SystemMetrics mdm = runSystem(dm);
    const SystemMetrics macc = runSystem(accord);
    EXPECT_GT(macc.hitRate, mdm.hitRate);
    EXPECT_GT(macc.wpAccuracy, 0.7);
    EXPECT_GT(macc.policyStorageBits, 0u);
    EXPECT_EQ(mdm.policyStorageBits, 0u);
}

TEST(System, MixWorkloadRuns)
{
    SystemConfig config = fastConfig("mix3");
    config.runTimed = false;
    const SystemMetrics m = runSystem(config);
    EXPECT_GT(m.hitRate, 0.0);
}

TEST(Runner, WeightedSpeedupIdentity)
{
    const SystemMetrics m = runSystem(fastConfig());
    EXPECT_DOUBLE_EQ(weightedSpeedup(m, m), 1.0);
}

TEST(Runner, WeightedSpeedupAveragesCores)
{
    SystemMetrics a, b;
    a.coreIpc = {1.0, 2.0};
    b.coreIpc = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(weightedSpeedup(a, b), 1.5);
}

TEST(Runner, NamedConfigParsing)
{
    const auto dm = namedConfig("libq", "dm");
    EXPECT_EQ(dm.ways, 1u);
    EXPECT_TRUE(dm.policySpec.empty());

    const auto par = namedConfig("libq", "8way-parallel");
    EXPECT_EQ(par.ways, 8u);
    EXPECT_EQ(par.lookup, dramcache::LookupMode::Parallel);

    const auto ideal = namedConfig("libq", "4way-ideal");
    EXPECT_EQ(ideal.lookup, dramcache::LookupMode::Ideal);

    const auto accord = namedConfig("libq", "2way-pws+gws");
    EXPECT_EQ(accord.ways, 2u);
    EXPECT_EQ(accord.lookup, dramcache::LookupMode::Predicted);
    EXPECT_EQ(accord.policySpec, "pws+gws");

    const auto ca = namedConfig("libq", "ca");
    EXPECT_EQ(ca.org, dramcache::Organization::ColumnAssoc);
}

TEST(RunnerDeath, BadConfigNameFatal)
{
    EXPECT_EXIT(namedConfig("libq", "bogus"),
                ::testing::ExitedWithCode(1), "bad config name");
}

TEST(Runner, CliOverridesApply)
{
    Config cli;
    cli.parseArg("scale=256");
    cli.parseArg("cores=2");
    cli.parseArg("timed=123");
    cli.parseArg("seed=5");
    SystemConfig config;
    applyCliOverrides(config, cli);
    EXPECT_EQ(config.scale, 256u);
    EXPECT_EQ(config.numCores, 2u);
    EXPECT_EQ(config.timedPerCore, 123u);
    EXPECT_EQ(config.seed, 5u);
}

TEST(Runner, FullFlagSetsScaleOne)
{
    Config cli;
    cli.parseArg("full=1");
    SystemConfig config;
    applyCliOverrides(config, cli);
    EXPECT_EQ(config.scale, 1u);
}

TEST(Runner, BaselineCacheMemoizes)
{
    Config cli;
    cli.parseArg("scale=1024");
    cli.parseArg("cores=2");
    cli.parseArg("warm=5000");
    cli.parseArg("timed=300");
    BaselineCache cache;
    const auto &a = cache.get("libq", cli);
    const auto &b = cache.get("libq", cli);
    EXPECT_EQ(&a, &b);      // same object: simulated once
}

TEST(System, SpeedupOfAccordOverDmIsSane)
{
    SystemConfig dm = fastConfig("libq");
    SystemConfig accord = fastConfig("libq");
    accord.ways = 2;
    accord.policySpec = "pws+gws";
    const double speedup =
        weightedSpeedup(runSystem(accord), runSystem(dm));
    EXPECT_GT(speedup, 0.7);
    EXPECT_LT(speedup, 3.0);
}

/** @file Unit tests for Ganged Way-Steering and the region tables. */

#include <gtest/gtest.h>

#include "core/ganged.hpp"
#include "core/steer.hpp"

using namespace accord;
using namespace accord::core;

namespace
{

CacheGeometry
geom2(std::uint64_t sets = 4096)
{
    CacheGeometry g;
    g.ways = 2;
    g.sets = sets;
    return g;
}

std::unique_ptr<GangedPolicy>
makeGws(unsigned entries = 64, double pip = -1.0)
{
    std::unique_ptr<WayPolicy> base;
    if (pip >= 0.0)
        base = std::make_unique<PwsPolicy>(geom2(), pip, 5);
    else
        base = std::make_unique<UnbiasedPolicy>(geom2(), 5);
    GangedParams params;
    params.ritEntries = entries;
    params.rltEntries = entries;
    return std::make_unique<GangedPolicy>(std::move(base), params);
}

LineRef
refFor(LineAddr line)
{
    return LineRef::make(line, geom2());
}

} // namespace

// ---------------- RegionTable ----------------

TEST(RegionTable, MissOnEmpty)
{
    RegionTable t(4);
    EXPECT_FALSE(t.lookup(7).has_value());
    EXPECT_EQ(t.occupancy(), 0u);
}

TEST(RegionTable, InsertThenLookup)
{
    RegionTable t(4);
    t.insert(7, 1);
    const auto way = t.lookup(7);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 1u);
}

TEST(RegionTable, UpdateExistingEntry)
{
    RegionTable t(4);
    t.insert(7, 0);
    t.insert(7, 1);
    EXPECT_EQ(*t.lookup(7), 1u);
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(RegionTable, EvictsLruWhenFull)
{
    RegionTable t(2);
    t.insert(1, 0);
    t.insert(2, 0);
    t.lookup(1);        // refresh region 1
    t.insert(3, 0);     // must evict region 2
    EXPECT_TRUE(t.lookup(1).has_value());
    EXPECT_FALSE(t.lookup(2).has_value());
    EXPECT_TRUE(t.lookup(3).has_value());
}

TEST(RegionTable, Invalidate)
{
    RegionTable t(2);
    t.insert(9, 1);
    t.invalidate(9);
    EXPECT_FALSE(t.lookup(9).has_value());
    t.invalidate(9);    // idempotent
}

TEST(RegionTable, CapacityBound)
{
    RegionTable t(8);
    for (std::uint64_t r = 0; r < 100; ++r)
        t.insert(r, 0);
    EXPECT_EQ(t.occupancy(), 8u);
}

// ---------------- GangedPolicy ----------------

TEST(Gws, InstallsFollowFirstRegionDecision)
{
    auto gws = makeGws();
    const LineAddr base = 50 * linesPerRegion;
    const unsigned first = gws->install(refFor(base));
    // Subsequent installs from the same 4KB region follow it.
    for (unsigned i = 1; i < 64; ++i)
        EXPECT_EQ(gws->install(refFor(base + i)), first);
}

TEST(Gws, PredictionFollowsLastSeenWay)
{
    auto gws = makeGws();
    const LineAddr base = 10 * linesPerRegion;
    gws->onHit(refFor(base), 1);
    EXPECT_EQ(gws->predict(refFor(base + 5)), 1u);
    gws->onHit(refFor(base + 5), 0);
    EXPECT_EQ(gws->predict(refFor(base + 9)), 0u);
}

TEST(Gws, InstallUpdatesLookupTable)
{
    auto gws = makeGws();
    const LineAddr base = 11 * linesPerRegion;
    const unsigned way = gws->install(refFor(base));
    gws->onInstall(refFor(base), way);
    EXPECT_EQ(gws->predict(refFor(base + 1)), way);
}

TEST(Gws, DistinctRegionsAreIndependent)
{
    auto gws = makeGws();
    gws->onHit(refFor(1 * linesPerRegion), 0);
    gws->onHit(refFor(2 * linesPerRegion), 1);
    EXPECT_EQ(gws->predict(refFor(1 * linesPerRegion + 3)), 0u);
    EXPECT_EQ(gws->predict(refFor(2 * linesPerRegion + 3)), 1u);
}

TEST(Gws, TableEvictionForgetsOldRegions)
{
    auto gws = makeGws(4);
    gws->onHit(refFor(0), 1);
    // Flood with other regions to evict region 0 from the 4-entry RLT.
    for (LineAddr r = 1; r <= 8; ++r)
        gws->onHit(refFor(r * linesPerRegion), 0);
    // Prediction falls back to the base policy (can be anything
    // in range, but the RLT no longer pins it to way 1 for sure);
    // what we can check deterministically is the RIT behavior:
    auto gws2 = makeGws(4);
    const unsigned w0 = gws2->install(refFor(0));
    for (LineAddr r = 1; r <= 8; ++r)
        gws2->install(refFor(r * linesPerRegion));
    // Region 0 evicted: a new install decision is made (may differ).
    (void)w0;
    SUCCEED();
}

TEST(Gws, RltCoverageTracksSpatialLocality)
{
    auto gws = makeGws();
    // Dense region reuse: predictions after the first per region are
    // RLT hits.
    for (LineAddr base = 0; base < 16 * linesPerRegion;
         base += linesPerRegion) {
        gws->onHit(refFor(base), 0);
        for (unsigned i = 1; i < 8; ++i)
            gws->predict(refFor(base + i));
    }
    EXPECT_GT(gws->rltCoverage(), 0.9);
}

TEST(Gws, CandidatesPassThroughToBase)
{
    CacheGeometry g;
    g.ways = 8;
    g.sets = 4096;
    auto base = std::make_unique<SwsPolicy>(g, 2, 0.85, 5);
    const auto *raw = base.get();
    GangedPolicy gws(std::move(base), GangedParams{});
    for (LineAddr line = 0; line < 1000; line += 7) {
        const LineRef ref = LineRef::make(line, g);
        EXPECT_EQ(gws.candidates(ref), raw->candidates(ref));
    }
}

TEST(Gws, GangedInstallStaysInSwsCandidates)
{
    CacheGeometry g;
    g.ways = 8;
    g.sets = 4096;
    auto base = std::make_unique<SwsPolicy>(g, 2, 0.85, 5);
    GangedPolicy gws(std::move(base), GangedParams{});
    for (LineAddr base_line = 0; base_line < 64 * linesPerRegion;
         base_line += linesPerRegion) {
        for (unsigned i = 0; i < 16; ++i) {
            const LineRef ref = LineRef::make(base_line + i, g);
            const unsigned way = gws.install(ref);
            EXPECT_TRUE(gws.candidates(ref) & (1ULL << way))
                << "ganged install escaped the SWS candidate set";
        }
    }
}

TEST(Gws, StorageMatchesPaperBudget)
{
    auto gws = makeGws(64);
    // 128 entries x (19-bit region tag + valid + 1-bit way) = 336
    // bytes; the paper rounds to 320 by not counting one bit.
    EXPECT_EQ(gws->storageBits(), 128u * 21u);
    EXPECT_LE(gws->storageBits() / 8, 340u);
}

TEST(Gws, NameComposition)
{
    EXPECT_EQ(makeGws()->name(), "gws");
    EXPECT_EQ(makeGws(64, 0.85)->name(), "pws85+gws");
}

TEST(GwsDeath, TooFewSetsRejected)
{
    CacheGeometry g;
    g.ways = 2;
    g.sets = 32;    // fewer than lines per region
    auto base = std::make_unique<UnbiasedPolicy>(g, 5);
    EXPECT_DEATH(GangedPolicy(std::move(base), GangedParams{}),
                 "64 sets");
}

/** Property: RIT ganging means one way per region, across table sizes. */
class GwsEntries : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GwsEntries, OneWayPerActiveRegion)
{
    auto gws = makeGws(GetParam());
    const LineAddr base = 3 * linesPerRegion;
    const unsigned way = gws->install(refFor(base));
    for (unsigned i = 1; i < 32; ++i)
        EXPECT_EQ(gws->install(refFor(base + i)), way);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GwsEntries,
                         ::testing::Values(8u, 16u, 64u, 256u));

/** @file Unit tests for DramSystem mapping, routing, and presets. */

#include <gtest/gtest.h>

#include <set>

#include "common/event_queue.hpp"
#include "dram/dram_system.hpp"

using namespace accord;
using namespace accord::dram;

namespace
{

TimingParams
smallDevice()
{
    TimingParams p;
    p.channels = 4;
    p.banksPerChannel = 8;
    p.rowBytes = 2048;
    p.capacityBytes = 16ULL << 20;
    return p;
}

} // namespace

TEST(DramSystem, MapLineStripesChannelsFirst)
{
    EventQueue eq;
    DramSystem sys(smallDevice(), eq);
    for (LineAddr line = 0; line < 4; ++line)
        EXPECT_EQ(sys.mapLine(line).channel, line);
    EXPECT_EQ(sys.mapLine(4).channel, 0u);
    EXPECT_EQ(sys.mapLine(4).bank, 1u);
}

TEST(DramSystem, MapLineIsInjectiveOverCapacity)
{
    EventQueue eq;
    DramSystem sys(smallDevice(), eq);
    std::set<std::tuple<unsigned, unsigned, std::uint64_t>> seen;
    const std::uint64_t lines_per_row =
        smallDevice().rowBytes / lineSize;
    // Sample line addresses; (channel,bank,row) collides only for
    // lines sharing a row.
    for (LineAddr line = 0; line < 4096; ++line) {
        const PhysLoc loc = sys.mapLine(line);
        seen.insert({loc.channel, loc.bank, loc.row});
    }
    EXPECT_EQ(seen.size(), 4096 / lines_per_row);
}

TEST(DramSystem, MapLineWithinGeometry)
{
    EventQueue eq;
    const auto p = smallDevice();
    DramSystem sys(p, eq);
    for (LineAddr line = 0; line < p.capacityBytes / lineSize;
         line += 997) {
        const PhysLoc loc = sys.mapLine(line);
        EXPECT_LT(loc.channel, p.channels);
        EXPECT_LT(loc.bank, p.banksPerChannel);
        EXPECT_LT(loc.row, p.rowsPerBank());
    }
}

TEST(DramSystem, AccessLineCompletes)
{
    EventQueue eq;
    DramSystem sys(smallDevice(), eq);
    int completions = 0;
    for (LineAddr line = 0; line < 64; ++line)
        sys.accessLine(line, line % 3 == 0,
                       [&](Cycle) { ++completions; });
    eq.run();
    EXPECT_EQ(completions, 64);
    EXPECT_TRUE(sys.idle());
}

TEST(DramSystem, AggregateStatsSumChannels)
{
    EventQueue eq;
    DramSystem sys(smallDevice(), eq);
    for (LineAddr line = 0; line < 100; ++line)
        sys.accessLine(line, false, nullptr);
    for (LineAddr line = 0; line < 40; ++line)
        sys.accessLine(line, true, nullptr);
    eq.run();
    const DeviceStats agg = sys.aggregateStats();
    EXPECT_EQ(agg.readsServed, 100u);
    EXPECT_EQ(agg.writesServed, 40u);
    EXPECT_GT(agg.rowHitRate(), 0.0);
    EXPECT_GT(agg.avgReadLatency, 0.0);
}

TEST(DramSystem, PresetsValidate)
{
    EventQueue eq;
    DramSystem hbm(hbmCacheTiming(), eq);
    DramSystem pcm(pcmMainMemoryTiming(), eq);
    EXPECT_EQ(hbm.numChannels(), 8u);
    EXPECT_EQ(pcm.numChannels(), 2u);
}

TEST(TimingParams, PresetBandwidths)
{
    // Table III: cache 128 GB/s, memory 32 GB/s; at 3 GHz that is
    // ~42.7 and ~10.7 bytes per CPU cycle.
    EXPECT_NEAR(hbmCacheTiming().peakBytesPerCycle(), 42.7, 0.5);
    EXPECT_NEAR(pcmMainMemoryTiming().peakBytesPerCycle(), 10.7, 0.5);
}

TEST(TimingParams, NvmSlowerThanCache)
{
    const auto hbm = hbmCacheTiming();
    const auto pcm = pcmMainMemoryTiming();
    // Array read 2-4X, write recovery much longer (Section III-A).
    EXPECT_GE(pcm.tRcd, 2 * hbm.tRcd);
    EXPECT_LE(pcm.tRcd, 4 * (hbm.tRcd + hbm.tCas));
    EXPECT_GT(pcm.tWr, 4 * hbm.tWr);
}

TEST(TimingParams, RowsPerBankConsistent)
{
    const auto p = hbmCacheTiming();
    EXPECT_EQ(p.rowsPerBank() * p.rowBytes * p.banksPerChannel
                  * p.channels,
              p.capacityBytes);
}

TEST(TimingParamsDeath, BadGeometryIsFatal)
{
    TimingParams p = hbmCacheTiming();
    p.channels = 3;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "powers of two");
}

TEST(TimingParamsDeath, BadWatermarksAreFatal)
{
    TimingParams p = hbmCacheTiming();
    p.writeDrainLow = p.writeDrainHigh;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "watermarks");
}

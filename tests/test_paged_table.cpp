/**
 * @file
 * Unit tests for the paged struct-of-arrays storage layer
 * (common/paged_table.hpp): page materialization and teardown,
 * dense/paged read identity, resident-byte accounting, the
 * SparsePagedMap used by the DCP directory, and the end-to-end
 * dense-vs-paged byte-identity replay of the fig12 smoke sweep.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/paged_table.hpp"
#include "common/rng.hpp"
#include "sim/runner.hpp"

using namespace accord;

namespace
{

constexpr std::uint64_t kPage = PagedColumn<std::uint32_t>::kPageSlots;

} // namespace

TEST(AutoStorageMode, ThresholdSplitsBenchAndGigascale)
{
    // 1/128-scale tag stores (512K lines) stay dense; full-scale 4GB
    // caches (64M lines) go paged.
    EXPECT_EQ(autoStorageMode(1ULL << 19), StorageMode::Dense);
    EXPECT_EQ(autoStorageMode(pagedStorageThreshold - 1),
              StorageMode::Dense);
    EXPECT_EQ(autoStorageMode(pagedStorageThreshold),
              StorageMode::Paged);
    EXPECT_EQ(autoStorageMode(1ULL << 26), StorageMode::Paged);
}

TEST(PagedColumn, UnwrittenSlotsReadAsFillWithoutMaterializing)
{
    const PagedColumn<std::uint32_t> col(3 * kPage, StorageMode::Paged,
                                         77);
    EXPECT_EQ(col.residentPages(), 0u);
    EXPECT_EQ(col.residentBytes(), 0u);
    EXPECT_EQ(col.read(0), 77u);
    EXPECT_EQ(col.read(3 * kPage - 1), 77u);
    EXPECT_EQ(col.at(kPage + 5), 77u);
    // Reads are the pure fast path: nothing materialized.
    EXPECT_EQ(col.residentPages(), 0u);
}

TEST(PagedColumn, WriteMaterializesExactlyOnePage)
{
    PagedColumn<std::uint32_t> col(4 * kPage, StorageMode::Paged);
    col.write(2 * kPage + 9, 42);
    EXPECT_EQ(col.residentPages(), 1u);
    EXPECT_EQ(col.residentBytes(), kPage * sizeof(std::uint32_t));
    EXPECT_TRUE(col.pageResident(2));
    EXPECT_FALSE(col.pageResident(0));
    EXPECT_FALSE(col.pageResident(3));
    EXPECT_EQ(col.read(2 * kPage + 9), 42u);
    // The rest of the materialized page still reads as fill.
    EXPECT_EQ(col.read(2 * kPage), 0u);
    // Re-writing the same page allocates nothing new.
    col.write(2 * kPage, 7);
    EXPECT_EQ(col.residentPages(), 1u);
}

TEST(PagedColumn, ResetTearsDownPages)
{
    PagedColumn<std::uint8_t> col(2 * kPage, StorageMode::Paged, 3);
    col.write(0, 1);
    col.write(kPage, 2);
    EXPECT_EQ(col.residentPages(), 2u);

    col.reset(2 * kPage, StorageMode::Paged, 3);
    EXPECT_EQ(col.residentPages(), 0u);
    EXPECT_EQ(col.residentBytes(), 0u);
    EXPECT_EQ(col.read(0), 3u);
    EXPECT_EQ(col.read(kPage), 3u);
}

TEST(PagedColumn, DenseModeIsEagerAndFullyResident)
{
    const std::uint64_t slots = kPage / 2 + 13;
    PagedColumn<std::uint64_t> col(slots, StorageMode::Dense, 5);
    EXPECT_EQ(col.pageCount(), 1u);
    EXPECT_TRUE(col.pageResident(0));
    EXPECT_EQ(col.residentBytes(), slots * sizeof(std::uint64_t));
    EXPECT_EQ(col.read(slots - 1), 5u);
    col.write(slots - 1, 9);
    EXPECT_EQ(col.at(slots - 1), 9u);
}

// SoA column identity: the same write sequence applied to a dense and
// a paged column must make every slot read identically — the property
// the rtol-0 refactor-equivalence gate relies on.
TEST(PagedColumn, DensePagedReadIdentityUnderRandomWrites)
{
    const std::uint64_t slots = 5 * kPage + 123;
    PagedColumn<std::uint32_t> dense(slots, StorageMode::Dense, 11);
    PagedColumn<std::uint32_t> paged(slots, StorageMode::Paged, 11);

    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t slot = rng.next() % slots;
        const auto value = static_cast<std::uint32_t>(rng.next());
        dense.write(slot, value);
        paged.write(slot, value);
    }
    for (std::uint64_t slot = 0; slot < slots; ++slot)
        ASSERT_EQ(dense.at(slot), paged.at(slot)) << "slot " << slot;
}

// Occupancy invariant: residentBytes is exactly pages x page bytes,
// and nextResidentSlot skips whole never-written pages.
TEST(PagedColumn, ResidencyAccountingAndAuditSkip)
{
    PagedColumn<std::uint16_t> col(6 * kPage, StorageMode::Paged);
    col.write(1 * kPage + 7, 1);
    col.write(4 * kPage, 2);
    EXPECT_EQ(col.residentPages(), 2u);
    EXPECT_EQ(col.residentBytes(),
              2 * kPage * sizeof(std::uint16_t));

    // From slot 0 the first resident slot is the start of page 1.
    EXPECT_EQ(col.nextResidentSlot(0), kPage);
    // Within a resident page the cursor does not move.
    EXPECT_EQ(col.nextResidentSlot(kPage + 100), kPage + 100);
    // Pages 2..3 are cold: skip straight to page 4.
    EXPECT_EQ(col.nextResidentSlot(2 * kPage), 4 * kPage);
    // Past the last resident page the sweep terminates at size().
    EXPECT_EQ(col.nextResidentSlot(5 * kPage), col.size());

    // Dense columns never skip.
    const PagedColumn<std::uint16_t> dense(2 * kPage,
                                           StorageMode::Dense);
    EXPECT_EQ(dense.nextResidentSlot(17), 17u);
}

TEST(PagedColumnDeath, AtRejectsOutOfRangeSlot)
{
    // at() uses ACCORD_ASSERT, so this dies in every build mode.
    const PagedColumn<std::uint32_t> col(kPage, StorageMode::Paged);
    EXPECT_DEATH(col.at(kPage), "outside column");
}

#if ACCORD_CHECKS_ENABLED
// read()/materializeSlot() bounds are ACCORD_CHECK: compiled out in
// plain Release builds, fatal in Debug/ACCORD_CHECKS builds.
TEST(PagedColumnDeath, CheckedBuildsRejectOutOfRangeFastPath)
{
    PagedColumn<std::uint32_t> col(kPage, StorageMode::Paged);
    EXPECT_DEATH(col.read(kPage), "outside column");
    EXPECT_DEATH(col.materializeSlot(2 * kPage), "outside column");
}
#endif

TEST(SparsePagedMap, RecordLookupEraseRoundTrip)
{
    SparsePagedMap map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.residentPages(), 0u);
    EXPECT_FALSE(map.lookup(12345).has_value());

    map.record(12345, 3);
    map.record(12345, 5); // update, not a second entry
    map.record(1ULL << 40, 0);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.lookup(12345), std::optional<unsigned>(5));
    EXPECT_EQ(map.lookup(1ULL << 40), std::optional<unsigned>(0));
    // Same page, different slot: still absent.
    EXPECT_FALSE(map.lookup(12346).has_value());

    map.erase(12345);
    map.erase(12345); // double erase is a no-op
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.lookup(12345).has_value());
    // Erase leaves the page resident (it is a tombstone, not a free).
    EXPECT_EQ(map.residentPages(), 2u);
}

TEST(SparsePagedMap, EntriesAreOrderedByKey)
{
    SparsePagedMap map;
    // Insert in shuffled order across distant pages.
    map.record(900000, 2);
    map.record(7, 1);
    map.record(1ULL << 33, 4);
    map.record(8, 6);

    const auto entries = map.entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0], std::make_pair(std::uint64_t{7}, 1u));
    EXPECT_EQ(entries[1], std::make_pair(std::uint64_t{8}, 6u));
    EXPECT_EQ(entries[2], std::make_pair(std::uint64_t{900000}, 2u));
    EXPECT_EQ(entries[3],
              std::make_pair(std::uint64_t{1} << 33, 4u));
}

TEST(SparsePagedMapDeath, ValueMustStayBelowAbsentSentinel)
{
    SparsePagedMap map;
    EXPECT_DEATH(map.record(0, SparsePagedMap::kAbsent), "sentinel");
}

namespace
{

/** Fig12 smoke sweep recorded with a forced storage backend. */
std::string
recordFig12Smoke(const std::string &backend)
{
    Config cli;
    cli.parseArg("scale=4096");
    cli.parseArg("cores=2");
    cli.parseArg("warm=3000");
    cli.parseArg("timed=200");
    cli.parseArg("measure=500");
    cli.parseArg("state_backend=" + backend);

    const std::vector<std::string> workloads = {"libq", "mcf"};
    const std::vector<std::string> configs = {"2way-pws+gws"};
    const bench::SpeedupSweep sweep(workloads, configs, cli);

    report::RunReport report("backend replay",
                             "dense/paged byte-identity test");
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        sim::SystemConfig base = sim::baselineConfig(workloads[w]);
        sim::applyCliOverrides(base, cli);
        bench::recordRun(report, workloads[w] + "/dm", base,
                         sweep.baseline(w));
        for (const std::string &name : configs) {
            bench::recordRun(
                report, workloads[w] + "/" + name,
                bench::timedConfig(workloads[w], name, cli),
                sweep.metrics(name, w));
        }
    }

    // Two surfaces may legitimately differ between the backends, and
    // compare_reports.py ignores both: the forced state_backend spec
    // token (--ignore-spec-key) and the per-run "host" objects (the
    // volatile partition, which carries resident_state_bytes — a
    // footprint gauge that is *supposed* to shrink under paging).
    // Strip them; everything left must match byte for byte.
    std::string json = report.toJson();
    const std::string token = " state_backend=" + backend;
    for (std::size_t pos = json.find(token);
         pos != std::string::npos; pos = json.find(token, pos))
        json.erase(pos, token.size());
    const std::string host = "\"host\": {";
    for (std::size_t pos = json.find(host);
         pos != std::string::npos; pos = json.find(host, pos)) {
        const std::size_t close = json.find('}', pos);
        // Swallow the preceding ",\n      " separator too.
        const std::size_t comma = json.rfind(',', pos);
        if (close == std::string::npos || comma == std::string::npos) {
            ADD_FAILURE() << "malformed host object in report JSON";
            break;
        }
        json.erase(comma, close + 1 - comma);
    }
    return json;
}

} // namespace

// The storage-layer replay of the refactor-equivalence guarantee: the
// fig12 smoke sweep must serialize to byte-identical run reports with
// the backend forced dense and forced paged — every metric of every
// run, not just headline speedups.  This is the in-process twin of
// the state_backend legs of tools/check_refactor_equivalence.sh.
TEST(StorageEquivalence, Fig12SmokeReportBytesIdenticalDenseVsPaged)
{
    EXPECT_EQ(recordFig12Smoke("dense"), recordFig12Smoke("paged"));
}

/** @file Unit tests for the policy factory. */

#include <gtest/gtest.h>

#include "core/factory.hpp"

using namespace accord;
using namespace accord::core;

namespace
{

CacheGeometry
geom(unsigned ways)
{
    CacheGeometry g;
    g.ways = ways;
    g.sets = (16ULL << 20) / 64 / ways;
    return g;
}

} // namespace

TEST(Factory, BuildsEverySpec)
{
    for (const char *spec :
         {"rand", "pws", "gws", "pws+gws", "mru", "ptag", "perfect"}) {
        const auto policy = makePolicy(spec, geom(2));
        ASSERT_NE(policy, nullptr) << spec;
        EXPECT_EQ(policy->geometry().ways, 2u);
    }
    for (const char *spec : {"sws", "sws+gws"}) {
        const auto policy = makePolicy(spec, geom(8));
        ASSERT_NE(policy, nullptr) << spec;
    }
}

TEST(Factory, NamesAreStable)
{
    EXPECT_EQ(makePolicy("rand", geom(2))->name(), "rand");
    EXPECT_EQ(makePolicy("pws", geom(2))->name(), "pws85");
    EXPECT_EQ(makePolicy("gws", geom(2))->name(), "gws");
    EXPECT_EQ(makePolicy("pws+gws", geom(2))->name(), "pws85+gws");
    EXPECT_EQ(makePolicy("sws", geom(8))->name(), "sws(8,2)");
    EXPECT_EQ(makePolicy("sws+gws", geom(8))->name(), "sws(8,2)+gws");
    EXPECT_EQ(makePolicy("mru", geom(2))->name(), "mru");
    EXPECT_EQ(makePolicy("ptag", geom(2))->name(), "ptag");
    EXPECT_EQ(makePolicy("perfect", geom(2))->name(), "perfect");
}

TEST(Factory, OptionsArePassedThrough)
{
    PolicyOptions opts;
    opts.pip = 0.70;
    opts.swsK = 3;
    opts.gwsEntries = 16;
    EXPECT_EQ(makePolicy("pws", geom(2), opts)->name(), "pws70");
    EXPECT_EQ(makePolicy("sws", geom(8), opts)->name(), "sws(8,3)");
    // 2 tables x 16 entries x 21 bits.
    EXPECT_EQ(makePolicy("gws", geom(2), opts)->storageBits(),
              2u * 16u * 21u);
}

TEST(Factory, StorageBudgets)
{
    // ACCORD's full configuration stays within a few hundred bytes
    // while the conventional predictors blow up (paper Tables II/IX).
    EXPECT_EQ(makePolicy("pws", geom(2))->storageBits(), 0u);
    EXPECT_LE(makePolicy("pws+gws", geom(2))->storageBits() / 8, 340u);
    EXPECT_GT(makePolicy("mru", geom(2))->storageBits() / 8, 10000u);
    EXPECT_GT(makePolicy("ptag", geom(2))->storageBits() / 8, 100000u);
}

TEST(FactoryDeath, UnknownSpecIsFatal)
{
    EXPECT_EXIT(makePolicy("voodoo", geom(2)),
                ::testing::ExitedWithCode(1), "unknown way policy");
}

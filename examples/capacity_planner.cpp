/**
 * @file
 * Capacity-planning study: how much stacked-DRAM cache does a hybrid
 * HBM+NVM memory system need, and how much does ACCORD's associativity
 * buy at each size?
 *
 * Sweeps the (full-scale) cache size from 1GB to 8GB for a chosen
 * workload and prints hit rate, average read latency, and the speedup
 * of ACCORD SWS(8,2) over the direct-mapped design of the same size —
 * the trade a system architect actually evaluates (cf. paper Table
 * VIII).
 *
 * Usage: capacity_planner [workload=mix2] [scale=128] ...
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload = cli.getString("workload", "mix2");

    std::printf("capacity planning for workload '%s'\n\n",
                workload.c_str());

    TextTable table({"cache size", "dm hit", "accord hit",
                     "dm read lat", "accord read lat",
                     "accord speedup"});
    for (const std::uint64_t gb : {1ULL, 2ULL, 4ULL, 8ULL}) {
        sim::SystemConfig base = sim::baselineConfig(workload);
        sim::applyCliOverrides(base, cli);
        base.fullCacheBytes = gb << 30;
        const auto dm = sim::runSystem(base);

        sim::SystemConfig accord =
            sim::namedConfig(workload, "8way-sws+gws");
        sim::applyCliOverrides(accord, cli);
        accord.fullCacheBytes = gb << 30;
        const auto m = sim::runSystem(accord);

        auto read_latency = [](const sim::SystemMetrics &metrics) {
            const auto &s = metrics.cacheStats;
            const double hit = s.readHits.rate();
            return hit * s.readHitLatency.mean()
                + (1.0 - hit) * s.readMissLatency.mean();
        };

        table.row()
            .cell(std::to_string(gb) + "GB")
            .percent(dm.hitRate)
            .percent(m.hitRate)
            .cell(read_latency(dm), 0)
            .cell(read_latency(m), 0)
            .cell(sim::weightedSpeedup(m, dm), 3);
    }
    table.print();
    std::printf("\n(latencies in CPU cycles at 3 GHz; sizes are "
                "full-scale equivalents, simulated at 1/scale)\n");

    cli.checkConsumed();
    return 0;
}

/**
 * @file
 * Graph-analytics case study (the workload class the paper's intro
 * motivates): run the six GAP workloads (PageRank, connected
 * components, betweenness centrality on twitter and web graphs)
 * against the direct-mapped baseline, 2-way ACCORD, and ACCORD with
 * SWS(8,2), reporting speedup, hit rate, prediction accuracy, and
 * memory-system energy.
 *
 * Graph workloads are the hard case for Ganged Way-Steering: their
 * sparse, pointer-chasing access patterns defeat the Recent Lookup
 * Table, so ACCORD must fall back on PWS — this example shows the
 * framework staying robust (no degradation) where GWS alone would
 * hurt.
 *
 * Usage: graph_analytics [scale=128] [timed=6000] ...
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "trace/workloads.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);

    const std::vector<std::string> graphs = {"pr_twi", "cc_twi",
                                             "bc_twi", "pr_web",
                                             "cc_web", "bc_web"};

    TextTable table({"workload", "config", "speedup", "hit-rate",
                     "wp-acc", "energy vs dm"});

    std::vector<double> accord_speedups, sws_speedups;
    for (const auto &workload : graphs) {
        sim::SystemConfig base = sim::baselineConfig(workload);
        sim::applyCliOverrides(base, cli);
        const auto dm = sim::runSystem(base);

        for (const std::string config_name :
             {"2way-pws+gws", "8way-sws+gws"}) {
            sim::SystemConfig config =
                sim::namedConfig(workload, config_name);
            sim::applyCliOverrides(config, cli);
            const auto m = sim::runSystem(config);
            const double speedup = sim::weightedSpeedup(m, dm);
            (config_name == std::string("2way-pws+gws")
                 ? accord_speedups
                 : sws_speedups)
                .push_back(speedup);
            table.row()
                .cell(workload)
                .cell(config_name)
                .cell(speedup, 3)
                .percent(m.hitRate)
                .percent(m.wpAccuracy)
                .cell(m.energy.totalJ / dm.energy.totalJ, 3);
        }
    }
    table.print();

    std::printf("\nGAP gmean speedup: ACCORD 2-way %.3f, "
                "ACCORD SWS(8,2) %.3f\n",
                geomean(accord_speedups), geomean(sws_speedups));
    std::printf("Note how way-prediction accuracy stays ~80%%+ via the "
                "PWS fallback even though\nthe sparse access pattern "
                "defeats region-level (GWS) tracking.\n");

    cli.checkConsumed();
    return 0;
}

/**
 * @file
 * Quickstart: compare the direct-mapped DRAM cache against 2-way
 * ACCORD (PWS+GWS) on one workload and print the headline metrics.
 *
 * Usage: quickstart [workload=libq] [scale=64] [timed=6000] ...
 * (key=value overrides; see sim::applyCliOverrides)
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload = cli.getString("workload", "libq");

    auto run = [&](const std::string &name) {
        sim::SystemConfig config = sim::namedConfig(workload, name);
        sim::applyCliOverrides(config, cli);
        return sim::runSystem(config);
    };

    std::printf("workload: %s\n\n", workload.c_str());

    const sim::SystemMetrics dm = run("dm");
    const sim::SystemMetrics accord2 = run("2way-pws+gws");

    TextTable table({"config", "hit-rate", "wp-acc", "xfers/read",
                     "speedup", "sram-bytes"});
    table.row()
        .cell("direct-mapped")
        .percent(dm.hitRate)
        .cell("n/a")
        .cell(dm.transfersPerRead, 2)
        .cell(1.0, 3)
        .cell(std::uint64_t{0});
    table.row()
        .cell("ACCORD 2-way (PWS+GWS)")
        .percent(accord2.hitRate)
        .percent(accord2.wpAccuracy)
        .cell(accord2.transfersPerRead, 2)
        .cell(sim::weightedSpeedup(accord2, dm), 3)
        .cell(accord2.policyStorageBits / 8);
    table.print();

    cli.checkConsumed();
    return 0;
}

/**
 * @file
 * Trace record/replay workflow: capture an L4 access stream to a
 * trace file, then replay it against any cache configuration.
 *
 * This is the adoption path for users with real workloads: convert a
 * captured post-LLC miss stream to the compact accord.trace/1 binary
 * format with tools/convert_trace.py (docs/TRACES.md documents the
 * format) and point this tool at it.  Without a trace= argument the
 * example records a demo trace from the synthetic 'omnet' model
 * first, so it is runnable out of the box.
 *
 * Usage: trace_replay [trace=path.trc] [capacity=32M] [passes=4]
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "dramcache/controller.hpp"
#include "nvm/nvm_system.hpp"
#include "trace/bintrace.hpp"
#include "trace/generator.hpp"
#include "trace/workloads.hpp"

using namespace accord;

namespace
{

/** Record a demo trace from the synthetic omnet model. */
std::string
recordDemoTrace(std::uint64_t accesses)
{
    const std::string path = "/tmp/accord_demo_trace.trc";
    const auto &spec = trace::findBenchmark("omnet");
    const auto params = trace::generatorParams(spec, 0, 1, 256, 1);
    trace::WorkloadGen gen(params);
    trace::WritebackMixer mixer(gen, spec.wbFrac, 512, 7);

    trace::BinTraceWriter writer(path);
    for (std::uint64_t i = 0; i < accesses; ++i)
        writer.append(mixer.next());
    writer.close();
    std::printf("recorded %llu accesses to %s\n",
                static_cast<unsigned long long>(
                    writer.recordsWritten()),
                path.c_str());
    return path;
}

/** Replay the trace against one configuration (functional). */
void
replay(const std::string &path, unsigned ways,
       const std::string &policy_spec, std::uint64_t capacity,
       unsigned passes, TextTable &table)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);

    dramcache::DramCacheParams params;
    params.capacityBytes = capacity;
    params.ways = ways;
    params.lookup = dramcache::LookupMode::Predicted;

    std::unique_ptr<core::WayPolicy> policy;
    if (!policy_spec.empty()) {
        core::CacheGeometry geom;
        geom.ways = ways;
        geom.sets = capacity / lineSize / ways;
        core::PolicyOptions opts;
        opts.seed = 11;
        policy = core::makePolicy(policy_spec, geom, opts);
    }
    dramcache::DramCacheController cache(params, std::move(policy),
                                         dram::hbmCacheTiming(), eq,
                                         nvm);

    // Warm passes, then one measured pass; exercised through the same
    // TrafficSource interface a full System run would use.
    trace::TraceSource source(path, /* loop */ false,
                              /* stripe_count */ 1,
                              /* stripe_index */ 0);
    const auto onePass = [&] {
        while (!source.exhausted()) {
            const trace::Request req = source.next();
            if (req.kind == core::RequestKind::Writeback)
                cache.warmWriteback(req.line);
            else
                cache.warmRead(req.line);
        }
        source.rewind();
    };
    for (unsigned pass = 0; pass + 1 < passes; ++pass)
        onePass();
    cache.resetStats();
    onePass();

    const auto &s = cache.stats();
    table.row()
        .cell(cache.describe())
        .percent(s.readHits.rate())
        .percent(s.wayPrediction.rate())
        .cell(s.transfersPerRead(), 3);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);

    std::string path = cli.getString("trace", "");
    if (path.empty())
        path = recordDemoTrace(2'000'000);
    const std::uint64_t capacity =
        cli.getUint("capacity", 32ULL << 20);
    const auto passes =
        static_cast<unsigned>(cli.getUint("passes", 4));

    TextTable table({"config", "hit-rate", "wp-acc", "xfers/read"});
    replay(path, 1, "", capacity, passes, table);
    replay(path, 2, "rand", capacity, passes, table);
    replay(path, 2, "pws+gws", capacity, passes, table);
    replay(path, 8, "sws+gws", capacity, passes, table);
    table.print();

    cli.checkConsumed();
    return 0;
}

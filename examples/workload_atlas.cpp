/**
 * @file
 * Workload atlas: characterize every main-evaluation workload on the
 * functional model — hit rate at 1/2/4/8 ways, associativity
 * sensitivity, and GWS/PWS prediction accuracy.  Useful both as a
 * regression view of the synthetic workload models and as a template
 * for characterizing your own access streams.
 *
 * Usage: workload_atlas [scale=64] [measure=30000] [all=1]
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "trace/workloads.hpp"

using namespace accord;

namespace
{

sim::SystemMetrics
runFunctional(const std::string &workload, const std::string &name,
              const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = false;
    sim::applyCliOverrides(config, cli);
    return sim::runSystem(config);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);

    const auto names = cli.getBool("all", false)
        ? trace::allWorkloadNames()
        : trace::mainWorkloadNames();

    TextTable table({"workload", "dm", "2way", "4way", "8way",
                     "assoc-gain", "pws-acc", "gws-acc", "accord-acc"});

    std::vector<double> dm_rates, w8_rates;
    for (const auto &workload : names) {
        const auto dm = runFunctional(workload, "dm", cli);
        const auto w2 = runFunctional(workload, "2way-rand", cli);
        const auto w4 = runFunctional(workload, "4way-rand", cli);
        const auto w8 = runFunctional(workload, "8way-rand", cli);
        const auto pws = runFunctional(workload, "2way-pws", cli);
        const auto gws = runFunctional(workload, "2way-gws", cli);
        const auto acc = runFunctional(workload, "2way-pws+gws", cli);

        dm_rates.push_back(dm.hitRate);
        w8_rates.push_back(w8.hitRate);

        table.row()
            .cell(workload)
            .percent(dm.hitRate)
            .percent(w2.hitRate)
            .percent(w4.hitRate)
            .percent(w8.hitRate)
            .percent(w8.hitRate - dm.hitRate)
            .percent(pws.wpAccuracy)
            .percent(gws.wpAccuracy)
            .percent(acc.wpAccuracy);
    }
    table.row()
        .cell("amean")
        .percent(amean(dm_rates))
        .cell("")
        .cell("")
        .percent(amean(w8_rates))
        .percent(amean(w8_rates) - amean(dm_rates))
        .cell("")
        .cell("")
        .cell("");
    table.print();

    cli.checkConsumed();
    return 0;
}

/**
 * @file
 * Figure 15: off-chip memory-system power, energy, and energy-delay
 * product of ACCORD, normalized to the direct-mapped baseline.
 *
 * Expected shape (paper): similar DRAM-cache energy (bandwidth-
 * efficient lookups), lower main-memory energy (higher hit rate keeps
 * accesses out of the NVM), ~3% lower total energy and ~14% lower EDP.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 15: memory-system energy",
        "Fig 15 (speedup / power / energy / EDP vs direct-mapped)");

    const bench::SpeedupSweep sweep(trace::mainWorkloadNames(),
                                    {"2way-pws+gws", "8way-sws+gws"},
                                    rep.cli());

    report::ReportTable &table = rep.table(
        "energy", {"config", "speedup", "power", "energy", "EDP",
                   "cache-energy", "mem-energy"});
    for (const auto &config : sweep.configs()) {
        std::vector<double> speedup, power, energy, edp, cache_e, mem_e;
        for (std::size_t w = 0; w < sweep.workloads().size(); ++w) {
            const auto &m = sweep.metrics(config, w);
            const auto &b = sweep.baseline(w);
            speedup.push_back(sweep.speedup(config, w));
            power.push_back(m.energy.powerW() / b.energy.powerW());
            energy.push_back(m.energy.totalJ / b.energy.totalJ);
            edp.push_back(m.energy.edp() / b.energy.edp());
            cache_e.push_back(m.energy.cacheEnergyJ
                              / b.energy.cacheEnergyJ);
            mem_e.push_back(m.energy.memEnergyJ / b.energy.memEnergyJ);
        }
        table.row()
            .cell(config)
            .cell(geomean(speedup), 3)
            .cell(geomean(power), 3)
            .cell(geomean(energy), 3)
            .cell(geomean(edp), 3)
            .cell(geomean(cache_e), 3)
            .cell(geomean(mem_e), 3);
    }
    rep.note("(all values normalized to the direct-mapped baseline; "
             "<1 is better except speedup)");

    return rep.finish();
}

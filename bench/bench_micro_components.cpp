/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * policy decisions (PWS/GWS/SWS/partial-tag), RegionTable lookups,
 * TagStore way search, the RNG, and the event queue.  These guard the
 * simulator's own performance — a full Fig-10 sweep runs hundreds of
 * millions of these operations.
 */

#include <benchmark/benchmark.h>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/trace_event/tracer.hpp"
#include "core/factory.hpp"
#include "core/ganged.hpp"
#include "dramcache/tag_store.hpp"

using namespace accord;

namespace
{

core::CacheGeometry
benchGeometry(unsigned ways)
{
    core::CacheGeometry geom;
    geom.ways = ways;
    geom.sets = (64ULL << 20) / lineSize / ways;
    return geom;
}

void
policyPredictInstall(benchmark::State &state, const char *spec)
{
    const auto geom = benchGeometry(2);
    core::PolicyOptions opts;
    opts.seed = 42;
    const auto policy = core::makePolicy(spec, geom, opts);
    Rng rng(7);
    for (auto _ : state) {
        const auto ref =
            core::LineRef::make(rng.next() & 0xffffffff, geom);
        benchmark::DoNotOptimize(policy->predict(ref));
        const unsigned way = policy->install(ref);
        policy->onInstall(ref, way);
        benchmark::DoNotOptimize(way);
    }
}

void
BM_PolicyPws(benchmark::State &state)
{
    policyPredictInstall(state, "pws");
}

void
BM_PolicyPwsGws(benchmark::State &state)
{
    policyPredictInstall(state, "pws+gws");
}

void
BM_PolicySws(benchmark::State &state)
{
    policyPredictInstall(state, "sws");
}

void
BM_PolicyPartialTag(benchmark::State &state)
{
    policyPredictInstall(state, "ptag");
}

void
BM_RegionTableLookup(benchmark::State &state)
{
    core::RegionTable table(
        static_cast<unsigned>(state.range(0)));
    Rng rng(3);
    for (unsigned i = 0; i < table.entries(); ++i)
        table.insert(rng.next() & 0xff, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(table.lookup(rng.next() & 0xff));
}

void
BM_TagStoreFindWay(benchmark::State &state)
{
    const auto geom =
        benchGeometry(static_cast<unsigned>(state.range(0)));
    dramcache::TagStore tags(geom);
    Rng rng(5);
    for (std::uint64_t i = 0; i < geom.lines(); ++i) {
        const auto ref = core::LineRef::make(rng.next(), geom);
        tags.install(ref.set, static_cast<unsigned>(i % geom.ways),
                     ref.tag, false);
    }
    for (auto _ : state) {
        const auto ref = core::LineRef::make(rng.next(), geom);
        benchmark::DoNotOptimize(tags.findWay(ref.set, ref.tag));
    }
}

void
BM_Rng(benchmark::State &state)
{
    Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000));
}

void
BM_TraceHookOff(benchmark::State &state)
{
    // The instrumentation contract: with trace= unset every hook site
    // reduces to one branch on a null pointer.  This is what rides in
    // the simulator's hot loops, so it must stay at noise level next
    // to BM_Rng / BM_EventQueue.
    trace_event::Tracer *tracer = nullptr;
    benchmark::DoNotOptimize(tracer);
    Rng rng(13);
    std::uint64_t issued = 0;
    for (auto _ : state) {
        const LineAddr line = rng.next();
        trace_event::TxnId txn = trace_event::kNoTxn;
        if (tracer != nullptr)
            txn = tracer->begin(trace_event::TxnKind::Read, 0, line,
                                Cycle(issued));
        ++issued;
        benchmark::DoNotOptimize(txn);
    }
}

void
BM_TraceHookOn(benchmark::State &state)
{
    // Cost of a fully traced transaction (begin, lookup phase, probe
    // point, complete) with a small ring so memory stays bounded.
    trace_event::TracerConfig config;
    config.cap = 1024;
    trace_event::Tracer tracer(config);
    Rng rng(13);
    Cycle now = 0;
    for (auto _ : state) {
        const trace_event::TxnId txn = tracer.begin(
            trace_event::TxnKind::Read, 0, rng.next(), now);
        tracer.phaseBegin(txn, trace_event::Phase::Lookup, now);
        tracer.point(txn, trace_event::Point::ProbeIssue, now);
        tracer.phaseEnd(txn, trace_event::Phase::Lookup, now + 64);
        tracer.complete(txn, trace_event::RequestClass::HitPredict,
                        now + 64);
        now += 8;
        benchmark::DoNotOptimize(txn);
    }
}

void
BM_TelemetryOff(benchmark::State &state)
{
    // The flight-recorder contract mirrors the trace hooks: with
    // telemetry= unset every heartbeat site in System reduces to one
    // branch on a null recorder pointer, so a disabled recorder must
    // cost nothing measurable in the simulator's hot loops.
    telemetry::FlightRecorder *recorder = nullptr;
    benchmark::DoNotOptimize(recorder);
    std::uint64_t position = 0;
    for (auto _ : state) {
        ++position;
        if (recorder != nullptr && recorder->due(position))
            recorder->heartbeat(telemetry::HeartbeatSample{});
        benchmark::DoNotOptimize(position);
    }
}

void
BM_TelemetryOn(benchmark::State &state)
{
    // Worst-case recorder cost: interval=1 fires a heartbeat (host
    // sampling, JSON encode, flush) on every unit, into a bit-bucket.
    // Real runs amortize this over thousands of units per heartbeat.
    telemetry::TelemetryConfig config;
    config.path = "/dev/null";
    config.interval = 1;
    telemetry::FlightRecorder::Header header;
    header.spec = "bench micro";
    telemetry::FlightRecorder recorder(config, header);
    telemetry::HeartbeatSample sample;
    sample.phase = "timed";
    for (auto _ : state) {
        ++sample.position;
        ++sample.reads;
        if (recorder.due(sample.position))
            recorder.heartbeat(sample);
        benchmark::DoNotOptimize(sample.position);
    }
}

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleAfter(10, [&sink] { ++sink; });
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
}

/** Same-cycle bursts: the calendar bucket's FIFO append/pop path. */
void
BM_EventQueueBurst(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 8; ++i)
            eq.scheduleAfter(4, [&sink] { ++sink; });
        for (int i = 0; i < 8; ++i)
            eq.step();
    }
    benchmark::DoNotOptimize(sink);
}

/** Beyond-horizon delays: overflow-heap push plus migration. */
void
BM_EventQueueFarFuture(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleAfter(EventQueue::kBuckets + 3, [&sink] { ++sink; });
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
}

BENCHMARK(BM_PolicyPws);
BENCHMARK(BM_PolicyPwsGws);
BENCHMARK(BM_PolicySws);
BENCHMARK(BM_PolicyPartialTag);
BENCHMARK(BM_RegionTableLookup)->Arg(64)->Arg(256);
BENCHMARK(BM_TagStoreFindWay)->Arg(2)->Arg(8);
BENCHMARK(BM_Rng);
BENCHMARK(BM_TraceHookOff);
BENCHMARK(BM_TraceHookOn);
BENCHMARK(BM_TelemetryOff);
BENCHMARK(BM_TelemetryOn);
BENCHMARK(BM_EventQueue);
BENCHMARK(BM_EventQueueBurst);
BENCHMARK(BM_EventQueueFarFuture);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * policy decisions (PWS/GWS/SWS/partial-tag), RegionTable lookups,
 * TagStore way search, the RNG, and the event queue.  These guard the
 * simulator's own performance — a full Fig-10 sweep runs hundreds of
 * millions of these operations.
 */

#include <benchmark/benchmark.h>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "core/factory.hpp"
#include "core/ganged.hpp"
#include "dramcache/tag_store.hpp"

using namespace accord;

namespace
{

core::CacheGeometry
benchGeometry(unsigned ways)
{
    core::CacheGeometry geom;
    geom.ways = ways;
    geom.sets = (64ULL << 20) / lineSize / ways;
    return geom;
}

void
policyPredictInstall(benchmark::State &state, const char *spec)
{
    const auto geom = benchGeometry(2);
    core::PolicyOptions opts;
    opts.seed = 42;
    const auto policy = core::makePolicy(spec, geom, opts);
    Rng rng(7);
    for (auto _ : state) {
        const auto ref =
            core::LineRef::make(rng.next() & 0xffffffff, geom);
        benchmark::DoNotOptimize(policy->predict(ref));
        const unsigned way = policy->install(ref);
        policy->onInstall(ref, way);
        benchmark::DoNotOptimize(way);
    }
}

void
BM_PolicyPws(benchmark::State &state)
{
    policyPredictInstall(state, "pws");
}

void
BM_PolicyPwsGws(benchmark::State &state)
{
    policyPredictInstall(state, "pws+gws");
}

void
BM_PolicySws(benchmark::State &state)
{
    policyPredictInstall(state, "sws");
}

void
BM_PolicyPartialTag(benchmark::State &state)
{
    policyPredictInstall(state, "ptag");
}

void
BM_RegionTableLookup(benchmark::State &state)
{
    core::RegionTable table(
        static_cast<unsigned>(state.range(0)));
    Rng rng(3);
    for (unsigned i = 0; i < table.entries(); ++i)
        table.insert(rng.next() & 0xff, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(table.lookup(rng.next() & 0xff));
}

void
BM_TagStoreFindWay(benchmark::State &state)
{
    const auto geom =
        benchGeometry(static_cast<unsigned>(state.range(0)));
    dramcache::TagStore tags(geom);
    Rng rng(5);
    for (std::uint64_t i = 0; i < geom.lines(); ++i) {
        const auto ref = core::LineRef::make(rng.next(), geom);
        tags.install(ref.set, static_cast<unsigned>(i % geom.ways),
                     ref.tag, false);
    }
    for (auto _ : state) {
        const auto ref = core::LineRef::make(rng.next(), geom);
        benchmark::DoNotOptimize(tags.findWay(ref.set, ref.tag));
    }
}

void
BM_Rng(benchmark::State &state)
{
    Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000));
}

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleAfter(10, [&sink] { ++sink; });
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
}

BENCHMARK(BM_PolicyPws);
BENCHMARK(BM_PolicyPwsGws);
BENCHMARK(BM_PolicySws);
BENCHMARK(BM_PolicyPartialTag);
BENCHMARK(BM_RegionTableLookup)->Arg(64)->Arg(256);
BENCHMARK(BM_TagStoreFindWay)->Arg(2)->Arg(8);
BENCHMARK(BM_Rng);
BENCHMARK(BM_EventQueue);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Figure 10: speedup of 2-way DRAM cache designs over the
 * direct-mapped baseline, per workload.
 *
 * Expected shape (paper): parallel lookup wastes bandwidth and serial
 * lookup pays latency; PWS ~5.6%, GWS ~6.8% (but loses on low-spatial
 * workloads like mcf), PWS+GWS ~7.3%, close to the ~10.2% bound of
 * perfect way prediction.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 10: 2-way DRAM cache speedup",
        "Fig 10 (parallel / serial / PWS / GWS / PWS+GWS / perfect)");

    const bench::SpeedupSweep sweep(trace::mainWorkloadNames(),
                                    {"2way-parallel", "2way-serial",
                                     "2way-pws", "2way-gws",
                                     "2way-pws+gws", "2way-perfect"},
                                    rep.cli());
    sweep.addTable(rep, "speedup_2way");
    sweep.record(rep);

    return rep.finish();
}

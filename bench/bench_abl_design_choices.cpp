/**
 * @file
 * Ablations of ACCORD's design choices (beyond the paper's tables):
 *
 *  1. GWS table size: RIT/RLT entries 8..256 vs prediction accuracy —
 *     the paper claims 64 entries capture most of the benefit (IV-C2).
 *  2. DCP way bits: writebacks with vs without the probe-elision
 *     extension (II-B3) — transfer overhead of writeback probes.
 *  3. SWS alternate-location count k: hit rate vs miss-confirmation
 *     cost for SWS(8,k) (V-A mentions the k>2 generalization).
 *  4. Replacement policy in the DRAM cache: LRU's recency state lives
 *     with the tags in DRAM, so every hit pays an update write —
 *     footnote 2 reports LRU losing ~9% to update-free random.
 *  5. Way placement: the paper co-locates all ways of a set in one
 *     row buffer (Fig 2b / Section VII) so mispredicted second probes
 *     are row hits; the striped layout ablation quantifies that.
 *  6. Main-memory technology: the paper's premise (Section II-B) is
 *     that associativity matters because NVM misses are expensive;
 *     with conventional DDR below the cache the benefit should shrink.
 */

#include "bench_common.hpp"

using namespace accord;

namespace
{

sim::SystemMetrics
runWith(const std::string &workload, sim::SystemConfig config,
        const Config &cli)
{
    config.workload = workload;
    config.runTimed = false;
    sim::applyCliOverrides(config, cli);
    return sim::runSystem(config);
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Ablations: GWS table size, DCP way bits, SWS k",
        "design-choice ablations referenced in DESIGN.md");
    const Config &cli = rep.cli();

    const auto workloads = trace::mainWorkloadNames();

    // --- 1. GWS table size ------------------------------------------
    {
        report::ReportTable &table = rep.table(
            "gws_table_size",
            {"rit/rlt entries", "wp-acc (amean)",
             "storage (bytes)"});
        for (const unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u}) {
            std::vector<double> acc;
            std::uint64_t storage = 0;
            for (const auto &workload : workloads) {
                sim::SystemConfig config =
                    sim::namedConfig(workload, "2way-pws+gws");
                config.policyOpts.gwsEntries = entries;
                const auto m = runWith(workload, config, cli);
                acc.push_back(m.wpAccuracy);
                storage = m.policyStorageBits / 8;
            }
            table.row()
                .cell(std::to_string(entries))
                .percent(amean(acc))
                .cell(storage);
        }
    }

    // --- 2. DCP way bits --------------------------------------------
    {
        report::ReportTable &table = rep.table(
            "dcp_way_bits",
            {"writeback routing", "xfers/read (amean)",
             "wb probe transfers / wb"});
        for (const bool dcp : {true, false}) {
            std::vector<double> xfers, probes;
            for (const auto &workload : workloads) {
                sim::SystemConfig config =
                    sim::namedConfig(workload, "2way-pws+gws");
                config.dcpWayBits = dcp;
                const auto m = runWith(workload, config, cli);
                xfers.push_back(m.transfersPerRead);
                const auto &s = m.cacheStats;
                const double wbs =
                    static_cast<double>(s.writebacksToCache.value()
                                        + s.writebacksToNvm.value());
                probes.push_back(
                    wbs == 0 ? 0.0
                             : static_cast<double>(
                                   s.writebackProbeTransfers.value())
                                 / wbs);
            }
            table.row()
                .cell(dcp ? "DCP + way bits (paper)" : "probe per wb")
                .cell(amean(xfers), 3)
                .cell(amean(probes), 2);
        }
    }

    // --- 3. SWS(8,k) ------------------------------------------------
    {
        report::ReportTable &table = rep.table(
            "sws_k", {"design", "hit-rate (amean)",
                      "miss-confirm probes"});
        for (const unsigned k : {2u, 3u, 4u, 8u}) {
            std::vector<double> hits;
            for (const auto &workload : workloads) {
                sim::SystemConfig config =
                    sim::namedConfig(workload, "8way-sws+gws");
                config.policyOpts.swsK = k;
                hits.push_back(runWith(workload, config, cli).hitRate);
            }
            table.row()
                .cell("SWS(8," + std::to_string(k) + ")")
                .percent(amean(hits))
                .cell(std::to_string(k));
        }
    }

    // --- 4. LRU vs random replacement in the L4 ---------------------
    {
        report::ReportTable &table = rep.table(
            "l4_replacement",
            {"replacement", "hit-rate (amean)",
             "xfers/read (amean)", "update writes/hit"});
        for (const char *name : {"2way-serial", "2way-lru"}) {
            std::vector<double> hits, xfers, updates;
            for (const auto &workload : workloads) {
                sim::SystemConfig config =
                    sim::namedConfig(workload, name);
                const auto m = runWith(workload, config, cli);
                hits.push_back(m.hitRate);
                xfers.push_back(m.transfersPerRead);
                const auto &s = m.cacheStats;
                updates.push_back(
                    s.readHits.hits() == 0
                        ? 0.0
                        : static_cast<double>(
                              s.replacementUpdateWrites.value())
                            / static_cast<double>(s.readHits.hits()));
            }
            table.row()
                .cell(name == std::string("2way-lru")
                          ? "LRU (in-DRAM state)"
                          : "random (update-free)")
                .percent(amean(hits))
                .cell(amean(xfers), 3)
                .cell(amean(updates), 2);
        }
    }

    // --- 5. Row-co-located vs striped way placement (timed) ---------
    {
        report::ReportTable &table = rep.table(
            "way_placement", {"layout", "speedup vs dm (gmean)",
                              "row-hit rate"});
        const std::vector<std::string> subset = {"sphinx", "libq",
                                                 "wrf", "gcc", "mcf"};
        for (const auto mode :
             {dramcache::LayoutMode::RowCoLocated,
              dramcache::LayoutMode::WayStriped}) {
            std::vector<double> speedups, row_hits;
            for (const auto &workload : subset) {
                sim::SystemConfig base =
                    sim::baselineConfig(workload);
                sim::applyCliOverrides(base, cli);
                const auto dm = sim::runSystem(base);

                sim::SystemConfig config =
                    sim::namedConfig(workload, "2way-pws+gws");
                config.layout = mode;
                sim::applyCliOverrides(config, cli);
                const auto m = sim::runSystem(config);
                speedups.push_back(sim::weightedSpeedup(m, dm));
                row_hits.push_back(m.hbmStats.rowHitRate());
            }
            table.row()
                .cell(mode == dramcache::LayoutMode::RowCoLocated
                          ? "ways share a row (paper)"
                          : "ways striped over banks")
                .cell(geomean(speedups), 3)
                .percent(amean(row_hits));
        }
    }

    // --- 6. NVM vs DDR main memory (timed) --------------------------
    {
        report::ReportTable &table = rep.table(
            "main_memory_technology",
            {"main memory", "accord speedup (gmean)"});
        const std::vector<std::string> subset = {"libq", "wrf", "gcc",
                                                 "soplex", "mcf"};
        for (const bool nvm_mem : {true, false}) {
            std::vector<double> speedups;
            for (const auto &workload : subset) {
                sim::SystemConfig base =
                    sim::baselineConfig(workload);
                base.nvmMainMemory = nvm_mem;
                sim::applyCliOverrides(base, cli);
                const auto dm = sim::runSystem(base);

                sim::SystemConfig config =
                    sim::namedConfig(workload, "2way-pws+gws");
                config.nvmMainMemory = nvm_mem;
                sim::applyCliOverrides(config, cli);
                speedups.push_back(
                    sim::weightedSpeedup(sim::runSystem(config), dm));
            }
            table.row()
                .cell(nvm_mem ? "PCM-class NVM (paper)"
                              : "conventional DDR")
                .cell(geomean(speedups), 3);
        }
    }

    return rep.finish();
}

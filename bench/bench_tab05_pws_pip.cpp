/**
 * @file
 * Table V: hit rate, way-prediction accuracy, and speedup of PWS as a
 * function of the preferred-way install probability (PIP).
 *
 * Expected shape (paper): hit rate nearly flat through PIP=85% then
 * collapses to direct-mapped at 100%; accuracy tracks PIP; speedup
 * peaks around PIP=85%.
 */

#include "bench_common.hpp"

using namespace accord;

namespace
{

sim::SystemConfig
pwsConfig(const std::string &workload, double pip, const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, "2way-pws");
    config.policyOpts.pip = pip;
    sim::applyCliOverrides(config, cli);
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table V: PWS sensitivity to PIP",
        "Table V (hit rate / WP accuracy / speedup vs PIP)");
    const Config &cli = rep.cli();

    const auto workloads = trace::mainWorkloadNames();

    // Baselines (timed) once per workload.
    std::vector<sim::SystemMetrics> baselines;
    for (const auto &workload : workloads) {
        sim::SystemConfig base = sim::baselineConfig(workload);
        sim::applyCliOverrides(base, cli);
        baselines.push_back(sim::runSystem(base));
    }

    report::ReportTable &table = rep.table(
        "pws_pip", {"organization", "hit-rate", "wp-acc", "speedup"});
    for (const double pip : {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 1.00}) {
        std::vector<double> hits, accs, speedups;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            // Functional pass for stable hit/accuracy numbers.
            sim::SystemConfig fconfig =
                pwsConfig(workloads[w], pip, cli);
            fconfig.runTimed = false;
            const auto fm = sim::runSystem(fconfig);
            hits.push_back(fm.hitRate);
            accs.push_back(fm.wpAccuracy);

            // Timed pass for the speedup.
            const auto tm =
                sim::runSystem(pwsConfig(workloads[w], pip, cli));
            speedups.push_back(
                sim::weightedSpeedup(tm, baselines[w]));
        }
        char label[48];
        if (pip >= 1.0)
            std::snprintf(label, sizeof label,
                          "direct-mapped (PIP=100%%)");
        else
            std::snprintf(label, sizeof label, "2-way PWS (PIP=%.0f%%)",
                          pip * 100);
        table.row()
            .cell(label)
            .percent(amean(hits))
            .percent(amean(accs))
            .cell(geomean(speedups), 3);
    }
    return rep.finish();
}

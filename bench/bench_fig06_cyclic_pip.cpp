/**
 * @file
 * Figure 6: hit rate of the cyclic-reference kernel (a,b)^N on a 2-way
 * cache under PWS, sweeping N and the preferred-way install
 * probability (PIP).
 *
 * Expected shape (paper): PIP=50% (unbiased) converges fastest;
 * PIP=70/80% track it closely; PIP=90% needs more iterations but
 * eventually learns to use both ways; a direct-mapped cache would stay
 * at 0%.
 */

#include <memory>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "dramcache/controller.hpp"
#include "nvm/nvm_system.hpp"
#include "trace/generator.hpp"

using namespace accord;

namespace
{

/** Hit rate of (a,b)^N pairs under PWS with the given PIP. */
double
cyclicHitRate(unsigned iterations, double pip, std::uint64_t seed)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);

    dramcache::DramCacheParams params;
    params.capacityBytes = 1ULL << 20;
    params.ways = 2;

    core::CacheGeometry geom;
    geom.ways = 2;
    geom.sets = params.capacityBytes / lineSize / 2;

    core::PolicyOptions opts;
    opts.pip = pip;
    opts.seed = seed;
    auto policy = core::makePolicy("pws", geom, opts);

    dramcache::DramCacheController cache(params, std::move(policy),
                                         dram::hbmCacheTiming(), eq,
                                         nvm);

    trace::CyclicPairGen gen(geom.sets, iterations, seed * 31 + 7);
    // Enough pairs for a stable estimate.
    const std::uint64_t pairs = 2000;
    for (std::uint64_t i = 0; i < pairs * 2 * iterations; ++i)
        cache.warmRead(gen.next().line);
    return cache.stats().readHits.rate();
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 6: cyclic-reference kernel vs PIP",
        "Fig 6 (hit rate of (a,b)^N under PWS for PIP=50..90%)");
    const std::uint64_t seed = rep.cli().getUint("seed", 1);

    const double pips[] = {0.50, 0.70, 0.80, 0.90};
    report::ReportTable &table = rep.table(
        "cyclic_hit_rate", {"N", "PIP=50%", "PIP=70%", "PIP=80%",
                            "PIP=90%", "PIP=100%"});
    for (unsigned n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        table.row().cell(std::to_string(n));
        for (const double pip : pips)
            table.percent(cyclicHitRate(n, pip, seed));
        // PIP=100% degenerates into a direct-mapped cache: pairs whose
        // tags share a preferred way (half of them) thrash forever, so
        // the curve saturates near 50% instead of learning to ~100%.
        table.percent(cyclicHitRate(n, 1.0, seed));
    }
    return rep.finish();
}

/**
 * @file
 * Shared scaffolding for the table/figure-regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it sweeps the paper's configurations over the calibrated workload
 * suite and prints the same rows/series the paper reports, plus the
 * run parameters (scale, seed) needed to reproduce the output.
 */

#ifndef ACCORD_BENCH_COMMON_HPP
#define ACCORD_BENCH_COMMON_HPP

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "trace/workloads.hpp"

namespace accord::bench
{

/** Parse CLI overrides and print the bench banner. */
inline Config
setup(int argc, char **argv, const char *title, const char *paper_ref)
{
    Config cli;
    cli.parseArgs(argc, argv);
    std::printf("=== %s ===\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("scale=1/%llu seed=%llu (override with key=value args)"
                "\n\n",
                static_cast<unsigned long long>(
                    cli.getUint("scale", 128)),
                static_cast<unsigned long long>(cli.getUint("seed", 1)));
    return cli;
}

/** Run one functional (untimed) configuration. */
inline sim::SystemMetrics
runFunctional(const std::string &workload, const std::string &name,
              const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = false;
    sim::applyCliOverrides(config, cli);
    return sim::runSystem(config);
}

/** Run one timed configuration. */
inline sim::SystemMetrics
runTimed(const std::string &workload, const std::string &name,
         const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = true;
    sim::applyCliOverrides(config, cli);
    return sim::runSystem(config);
}

/**
 * Timed sweep: for each workload, run the baseline once and every
 * named configuration, returning speedups[config][workload-index] and
 * appending "gmean" semantics to the caller.
 *
 * All (workload, config) runs fan out over a sim::SweepRunner; the
 * jobs= CLI override picks the worker count (default: all hardware
 * threads) and results are bit-identical for any value of it.
 */
class SpeedupSweep
{
  public:
    SpeedupSweep(std::vector<std::string> workloads,
                 std::vector<std::string> configs, const Config &cli)
        : result_(sim::SweepRunner(cli).runSpeedupSweep(
              std::move(workloads), std::move(configs), cli))
    {
    }

    const std::vector<std::string> &workloads() const
        { return result_.workloads; }
    const std::vector<std::string> &configs() const
        { return result_.configs; }

    double
    speedup(const std::string &config, std::size_t workload) const
    {
        return result_.speedups.at(config).at(workload);
    }

    double
    gmean(const std::string &config) const
    {
        return geomean(result_.speedups.at(config));
    }

    const sim::SystemMetrics &
    metrics(const std::string &config, std::size_t workload) const
    {
        return result_.metrics.at(config).at(workload);
    }

    const sim::SystemMetrics &
    baseline(std::size_t workload) const
    {
        return result_.baselines.at(workload);
    }

    /** Print the per-workload speedup table plus the gmean row. */
    void
    printTable() const
    {
        std::vector<std::string> header = {"workload"};
        for (const auto &config : configs())
            header.push_back(config);
        TextTable table(header);
        for (std::size_t w = 0; w < workloads().size(); ++w) {
            table.row().cell(workloads()[w]);
            for (const auto &config : configs())
                table.cell(speedup(config, w), 3);
        }
        table.row().cell("gmean");
        for (const auto &config : configs())
            table.cell(gmean(config), 3);
        table.print();
    }

  private:
    sim::SweepResult result_;
};

/**
 * Functional sweep: every (workload, config) untimed measurement run,
 * fanned out over a sim::SweepRunner like SpeedupSweep.  Benches that
 * tabulate hit rates or prediction accuracy iterate the grid instead
 * of calling runFunctional() in nested serial loops.
 */
class FunctionalSweep
{
  public:
    FunctionalSweep(std::vector<std::string> workloads,
                    std::vector<std::string> configs, const Config &cli)
        : workloads_(std::move(workloads)),
          configs_(std::move(configs)),
          grid_(sim::SweepRunner(cli).runFunctionalGrid(
              workloads_, configs_, cli))
    {
    }

    const std::vector<std::string> &workloads() const
        { return workloads_; }
    const std::vector<std::string> &configs() const { return configs_; }

    const sim::SystemMetrics &
    metrics(const std::string &config, std::size_t workload) const
    {
        return grid_.at(config).at(workload);
    }

    /** One metric over all workloads of a config, for amean()/geomean(). */
    template <typename Fn>
    std::vector<double>
    column(const std::string &config, Fn &&metric) const
    {
        std::vector<double> values;
        for (const sim::SystemMetrics &m : grid_.at(config))
            values.push_back(metric(m));
        return values;
    }

  private:
    std::vector<std::string> workloads_;
    std::vector<std::string> configs_;
    std::map<std::string, std::vector<sim::SystemMetrics>> grid_;
};

} // namespace accord::bench

#endif // ACCORD_BENCH_COMMON_HPP

/**
 * @file
 * Shared scaffolding for the table/figure-regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it sweeps the paper's configurations over the calibrated workload
 * suite and prints the same rows/series the paper reports, plus the
 * run parameters (scale, seed) needed to reproduce the output.
 */

#ifndef ACCORD_BENCH_COMMON_HPP
#define ACCORD_BENCH_COMMON_HPP

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "trace/workloads.hpp"

namespace accord::bench
{

/** Parse CLI overrides and print the bench banner. */
inline Config
setup(int argc, char **argv, const char *title, const char *paper_ref)
{
    Config cli;
    cli.parseArgs(argc, argv);
    std::printf("=== %s ===\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("scale=1/%llu seed=%llu (override with key=value args)"
                "\n\n",
                static_cast<unsigned long long>(
                    cli.getUint("scale", 128)),
                static_cast<unsigned long long>(cli.getUint("seed", 1)));
    return cli;
}

/** Run one functional (untimed) configuration. */
inline sim::SystemMetrics
runFunctional(const std::string &workload, const std::string &name,
              const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = false;
    sim::applyCliOverrides(config, cli);
    return sim::runSystem(config);
}

/** Run one timed configuration. */
inline sim::SystemMetrics
runTimed(const std::string &workload, const std::string &name,
         const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = true;
    sim::applyCliOverrides(config, cli);
    return sim::runSystem(config);
}

/**
 * Timed sweep: for each workload, run the baseline once and every
 * named configuration, returning speedups[config][workload-index] and
 * appending "gmean" semantics to the caller.
 */
class SpeedupSweep
{
  public:
    SpeedupSweep(std::vector<std::string> workloads,
                 std::vector<std::string> configs, const Config &cli)
        : workloads_(std::move(workloads)),
          configs_(std::move(configs))
    {
        for (const auto &workload : workloads_) {
            sim::SystemConfig base = sim::baselineConfig(workload);
            sim::applyCliOverrides(base, cli);
            const sim::SystemMetrics base_metrics =
                sim::runSystem(base);
            baselines_.push_back(base_metrics);
            for (const auto &config : configs_) {
                const sim::SystemMetrics m =
                    runTimed(workload, config, cli);
                speedups_[config].push_back(
                    sim::weightedSpeedup(m, base_metrics));
                metrics_[config].push_back(m);
            }
        }
    }

    const std::vector<std::string> &workloads() const
        { return workloads_; }
    const std::vector<std::string> &configs() const { return configs_; }

    double
    speedup(const std::string &config, std::size_t workload) const
    {
        return speedups_.at(config).at(workload);
    }

    double
    gmean(const std::string &config) const
    {
        return geomean(speedups_.at(config));
    }

    const sim::SystemMetrics &
    metrics(const std::string &config, std::size_t workload) const
    {
        return metrics_.at(config).at(workload);
    }

    const sim::SystemMetrics &
    baseline(std::size_t workload) const
    {
        return baselines_.at(workload);
    }

    /** Print the per-workload speedup table plus the gmean row. */
    void
    printTable() const
    {
        std::vector<std::string> header = {"workload"};
        for (const auto &config : configs_)
            header.push_back(config);
        TextTable table(header);
        for (std::size_t w = 0; w < workloads_.size(); ++w) {
            table.row().cell(workloads_[w]);
            for (const auto &config : configs_)
                table.cell(speedup(config, w), 3);
        }
        table.row().cell("gmean");
        for (const auto &config : configs_)
            table.cell(gmean(config), 3);
        table.print();
    }

  private:
    std::vector<std::string> workloads_;
    std::vector<std::string> configs_;
    std::vector<sim::SystemMetrics> baselines_;
    std::map<std::string, std::vector<double>> speedups_;
    std::map<std::string, std::vector<sim::SystemMetrics>> metrics_;
};

} // namespace accord::bench

#endif // ACCORD_BENCH_COMMON_HPP

/**
 * @file
 * Shared scaffolding for the table/figure-regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper: it
 * sweeps the paper's configurations over the calibrated workload suite
 * and emits the same rows/series the paper reports through a
 * report::Reporter, which prints the human-readable tables and, when
 * --json=<path> / --csv=<path> are given, writes the machine-readable
 * run report built from the very same cells.
 */

#ifndef ACCORD_BENCH_COMMON_HPP
#define ACCORD_BENCH_COMMON_HPP

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/report/reporter.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "trace/workloads.hpp"

namespace accord::bench
{

/** Resolve one functional (untimed) configuration. */
inline sim::SystemConfig
functionalConfig(const std::string &workload, const std::string &name,
                 const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = false;
    sim::applyCliOverrides(config, cli);
    return config;
}

/** Resolve one timed configuration. */
inline sim::SystemConfig
timedConfig(const std::string &workload, const std::string &name,
            const Config &cli)
{
    sim::SystemConfig config = sim::namedConfig(workload, name);
    config.runTimed = true;
    sim::applyCliOverrides(config, cli);
    return config;
}

/** Run one functional (untimed) configuration. */
inline sim::SystemMetrics
runFunctional(const std::string &workload, const std::string &name,
              const Config &cli)
{
    return sim::runSystem(functionalConfig(workload, name, cli));
}

/** Run one timed configuration. */
inline sim::SystemMetrics
runTimed(const std::string &workload, const std::string &name,
         const Config &cli)
{
    return sim::runSystem(timedConfig(workload, name, cli));
}

/**
 * Record one finished run into the report: its canonical config spec,
 * its final metric snapshot, the resident-state footprint (volatile
 * host partition), and (when epoch= sampling was on) its epoch
 * time-series.  residentStateBytes is deterministic — resident pages
 * are a pure function of the access stream — so recording it keeps
 * reports byte-identical across jobs= values; wall-clock or RSS host
 * values must stay out of this shared path for the same reason.
 */
inline void
recordRun(report::RunReport &report, const std::string &key,
          const sim::SystemConfig &config, const sim::SystemMetrics &m)
{
    report.setRunSpec(key, sim::canonicalConfigSpec(config));
    report.addRunMetrics(key, m.finalMetrics);
    report.addRunHostValue(
        key, "resident_state_bytes",
        static_cast<double>(m.residentStateBytes));
    if (!m.epochs.empty())
        report.addRunSeries(key, m.epochs);
}

/**
 * Timed sweep: for each workload, run the baseline once and every
 * named configuration, returning speedups[config][workload-index] and
 * appending "gmean" semantics to the caller.
 *
 * All (workload, config) runs fan out over a sim::SweepRunner; the
 * jobs= CLI override picks the worker count (default: all hardware
 * threads) and results are bit-identical for any value of it.
 */
class SpeedupSweep
{
  public:
    SpeedupSweep(std::vector<std::string> workloads,
                 std::vector<std::string> configs, const Config &cli)
        : result_(sim::SweepRunner(cli).runSpeedupSweep(
              std::move(workloads), std::move(configs), cli))
    {
    }

    const std::vector<std::string> &workloads() const
        { return result_.workloads; }
    const std::vector<std::string> &configs() const
        { return result_.configs; }

    double
    speedup(const std::string &config, std::size_t workload) const
    {
        return result_.speedups.at(config).at(workload);
    }

    double
    gmean(const std::string &config) const
    {
        return geomean(result_.speedups.at(config));
    }

    const sim::SystemMetrics &
    metrics(const std::string &config, std::size_t workload) const
    {
        return result_.metrics.at(config).at(workload);
    }

    const sim::SystemMetrics &
    baseline(std::size_t workload) const
    {
        return result_.baselines.at(workload);
    }

    /** Build the per-workload speedup table plus the gmean row. */
    report::ReportTable &
    addTable(report::Reporter &rep, const std::string &name) const
    {
        std::vector<std::string> header = {"workload"};
        for (const auto &config : configs())
            header.push_back(config);
        report::ReportTable &table = rep.table(name, header);
        for (std::size_t w = 0; w < workloads().size(); ++w) {
            table.row().cell(workloads()[w]);
            for (const auto &config : configs())
                table.cell(speedup(config, w), 3);
        }
        table.row().cell("gmean");
        for (const auto &config : configs())
            table.cell(gmean(config), 3);
        return table;
    }

    /**
     * Record every run of the sweep (baselines and configurations)
     * into the report, keyed "<workload>/dm" and "<workload>/<config>",
     * with the per-run "speedup" derived value attached.  Rebuilds
     * each SystemConfig exactly as the sweep runner did, so the
     * recorded canonical specs match the runs.
     */
    void
    record(report::Reporter &rep) const
    {
        report::RunReport &report = rep.report();
        for (std::size_t w = 0; w < workloads().size(); ++w) {
            const std::string &workload = workloads()[w];
            sim::SystemConfig base = sim::baselineConfig(workload);
            sim::applyCliOverrides(base, rep.cli());
            recordRun(report, workload + "/dm", base, baseline(w));
            for (const auto &name : configs()) {
                const std::string key = workload + "/" + name;
                recordRun(report, key,
                          timedConfig(workload, name, rep.cli()),
                          metrics(name, w));
                report.addRunValue(key, "speedup", speedup(name, w));
            }
        }
    }

  private:
    sim::SweepResult result_;
};

/**
 * Functional sweep: every (workload, config) untimed measurement run,
 * fanned out over a sim::SweepRunner like SpeedupSweep.  Benches that
 * tabulate hit rates or prediction accuracy iterate the grid instead
 * of calling runFunctional() in nested serial loops.
 */
class FunctionalSweep
{
  public:
    FunctionalSweep(std::vector<std::string> workloads,
                    std::vector<std::string> configs, const Config &cli)
        : workloads_(std::move(workloads)),
          configs_(std::move(configs)),
          grid_(sim::SweepRunner(cli).runFunctionalGrid(
              workloads_, configs_, cli))
    {
    }

    const std::vector<std::string> &workloads() const
        { return workloads_; }
    const std::vector<std::string> &configs() const { return configs_; }

    const sim::SystemMetrics &
    metrics(const std::string &config, std::size_t workload) const
    {
        return grid_.at(config).at(workload);
    }

    /** One metric over all workloads of a config, for amean()/geomean(). */
    template <typename Fn>
    std::vector<double>
    column(const std::string &config, Fn &&metric) const
    {
        std::vector<double> values;
        for (const sim::SystemMetrics &m : grid_.at(config))
            values.push_back(metric(m));
        return values;
    }

    /** Record every run of the grid, keyed "<workload>/<config>". */
    void
    record(report::Reporter &rep) const
    {
        for (const auto &name : configs_) {
            for (std::size_t w = 0; w < workloads_.size(); ++w) {
                recordRun(rep.report(), workloads_[w] + "/" + name,
                          functionalConfig(workloads_[w], name,
                                           rep.cli()),
                          metrics(name, w));
            }
        }
    }

  private:
    std::vector<std::string> workloads_;
    std::vector<std::string> configs_;
    std::map<std::string, std::vector<sim::SystemMetrics>> grid_;
};

} // namespace accord::bench

#endif // ACCORD_BENCH_COMMON_HPP

/**
 * @file
 * Table II: accuracy and storage of conventional way predictors on a
 * 4GB DRAM cache at 2/4/8 ways.
 *
 * Expected shape (paper): random ~50/25/12.5%; MRU ~86/74/63% with 4MB
 * of SRAM; 4-bit partial tags ~97/92/81% with 32MB.  Storage is
 * computed for the FULL 4GB geometry regardless of the run scale.
 */

#include "bench_common.hpp"
#include "core/factory.hpp"

using namespace accord;

namespace
{

/** Mean prediction accuracy of a policy over the main workloads. */
double
meanAccuracy(const std::string &spec, unsigned ways, const Config &cli)
{
    std::vector<double> acc;
    for (const auto &workload : trace::mainWorkloadNames()) {
        sim::SystemConfig config = sim::namedConfig(
            workload, std::to_string(ways) + "way-" + spec);
        config.runTimed = false;
        sim::applyCliOverrides(config, cli);
        acc.push_back(sim::runSystem(config).wpAccuracy);
    }
    return amean(acc);
}

/** SRAM bytes a policy needs on the paper's full 4GB cache. */
std::uint64_t
fullScaleStorageBytes(const std::string &spec, unsigned ways)
{
    core::CacheGeometry geom;
    geom.ways = ways;
    geom.sets = (4ULL << 30) / lineSize / ways;
    core::PolicyOptions opts;
    const auto policy = core::makePolicy(spec, geom, opts);
    return policy->storageBits() / 8;
}

std::string
humanBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ULL << 20))
        std::snprintf(buf, sizeof buf, "%.0fMB",
                      static_cast<double>(bytes) / (1 << 20));
    else if (bytes >= 1024)
        std::snprintf(buf, sizeof buf, "%.0fKB",
                      static_cast<double>(bytes) / 1024);
    else
        std::snprintf(buf, sizeof buf, "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table II: conventional way predictors",
        "Table II (accuracy and storage of Rand/MRU/Partial-Tag on a "
        "4GB cache)");
    const Config &cli = rep.cli();

    report::ReportTable &table = rep.table(
        "conventional_wp", {"ways", "rand acc", "mru acc", "ptag acc",
                            "rand SRAM", "mru SRAM", "ptag SRAM"});
    for (unsigned ways : {2u, 4u, 8u}) {
        table.row()
            .cell(std::to_string(ways) + "-way")
            .percent(meanAccuracy("rand", ways, cli))
            .percent(meanAccuracy("mru", ways, cli))
            .percent(meanAccuracy("ptag", ways, cli))
            .cell("0B")
            .cell(humanBytes(fullScaleStorageBytes("mru", ways)))
            .cell(humanBytes(fullScaleStorageBytes("ptag", ways)));
    }
    return rep.finish();
}

/**
 * @file
 * Table IX: SRAM storage requirements of the ACCORD components,
 * computed for the paper's full-scale 4GB cache.
 *
 * Expected (paper): PWS 0 bytes, GWS 320 bytes (64-entry RIT + RLT),
 * SWS 0 bytes, total 320 bytes.
 */

#include "bench_common.hpp"
#include "core/factory.hpp"

using namespace accord;

namespace
{

std::uint64_t
storageBytes(const std::string &spec, unsigned ways)
{
    core::CacheGeometry geom;
    geom.ways = ways;
    geom.sets = (4ULL << 30) / lineSize / ways;
    core::PolicyOptions opts;
    return core::makePolicy(spec, geom, opts)->storageBits() / 8;
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table IX: ACCORD storage requirements",
        "Table IX (SRAM bytes per ACCORD component, 4GB cache)");

    report::ReportTable &table = rep.table(
        "storage", {"component", "storage (bytes)", "paper"});
    table.row()
        .cell("Probabilistic Way-Steering")
        .cell(storageBytes("pws", 2))
        .cell("0");
    table.row()
        .cell("Ganged Way-Steering")
        .cell(storageBytes("gws", 2))
        .cell("320");
    table.row()
        .cell("Skewed Way-Steering")
        .cell(storageBytes("sws", 8))
        .cell("0");
    table.row()
        .cell("ACCORD (PWS+GWS)")
        .cell(storageBytes("pws+gws", 2))
        .cell("320");
    table.row()
        .cell("ACCORD SWS(8,2)+GWS")
        .cell(storageBytes("sws+gws", 8))
        .cell("~320");
    report::ReportTable &contrast = rep.table(
        "predictor_storage_contrast", {"predictor", "storage"});
    contrast.row().cell("MRU (2-way)").cell(storageBytes("mru", 2));
    contrast.row().cell("partial-tag 4b (2-way)")
        .cell(storageBytes("ptag", 2));

    return rep.finish();
}

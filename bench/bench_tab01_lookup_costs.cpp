/**
 * @file
 * Table I: the number of cache accesses and line transfers for looking
 * up an N-way set-associative DRAM cache, per organization.
 *
 * This bench validates the simulator's transfer accounting against the
 * paper's analytic counts: it builds each organization on a small
 * cache, fills one set with known lines, and measures the average
 * transfers for hits (over all resident ways) and for a confirmed
 * miss.
 *
 * Expected (paper): direct-mapped 1/1; parallel N/N; serial (N+1)/2
 * on hits and N on misses; way-predicted 1 on predicted hits and N on
 * misses (2 for SWS regardless of N).
 */

#include <memory>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "dramcache/controller.hpp"
#include "nvm/nvm_system.hpp"

using namespace accord;

namespace
{

struct Costs
{
    double hitTransfers;
    double missTransfers;
};

/** Measure average hit/miss transfer counts for one organization. */
Costs
measure(unsigned ways, dramcache::LookupMode lookup,
        const std::string &policy_spec)
{
    EventQueue eq;
    nvm::NvmSystem nvm(eq);

    dramcache::DramCacheParams params;
    params.capacityBytes = 1ULL << 20;
    params.ways = ways;
    params.lookup = lookup;

    core::CacheGeometry geom;
    geom.ways = ways;
    geom.sets = params.capacityBytes / lineSize / ways;

    std::unique_ptr<core::WayPolicy> policy;
    if (!policy_spec.empty()) {
        core::PolicyOptions opts;
        opts.seed = 77;
        policy = core::makePolicy(policy_spec, geom, opts);
    }

    dramcache::DramCacheController cache(params, std::move(policy),
                                         dram::hbmCacheTiming(), eq,
                                         nvm);

    // Fill one set with `ways` distinct lines (tags 1..ways map to the
    // same set), retrying until every way holds one of them.
    const std::uint64_t set = 123;
    for (int round = 0; round < 64; ++round) {
        for (unsigned t = 1; t <= ways; ++t)
            cache.warmRead((static_cast<std::uint64_t>(t) * geom.sets)
                           | set);
    }

    // Hits: average transfers over re-reading the resident lines.
    cache.resetStats();
    unsigned hits = 0;
    for (unsigned t = 1; t <= ways; ++t) {
        const LineAddr line =
            (static_cast<std::uint64_t>(t) * geom.sets) | set;
        if (cache.tagStore().findWay(set, t) >= 0) {
            cache.warmRead(line);
            ++hits;
        }
    }
    const double hit_transfers = hits == 0
        ? 0.0
        : static_cast<double>(cache.stats().cacheReadTransfers.value())
            / hits;

    // Miss: one access to a line guaranteed absent (fresh tag).
    cache.resetStats();
    cache.warmRead((static_cast<std::uint64_t>(999) * geom.sets) | set);
    const double miss_transfers =
        static_cast<double>(cache.stats().cacheReadTransfers.value());

    return {hit_transfers, miss_transfers};
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table I: lookup costs per organization",
        "Table I (accesses and line transfers on a hit and a miss)");

    report::ReportTable &table = rep.table(
        "lookup_costs", {"organization", "hit transfers",
                         "miss transfers", "paper hit", "paper miss"});

    const auto dm = measure(1, dramcache::LookupMode::Serial, "");
    table.row().cell("direct-mapped").cell(dm.hitTransfers, 2)
        .cell(dm.missTransfers, 2).cell("1").cell("1");

    for (unsigned n : {2u, 4u, 8u}) {
        const auto par =
            measure(n, dramcache::LookupMode::Parallel, "");
        table.row()
            .cell("parallel " + std::to_string(n) + "-way")
            .cell(par.hitTransfers, 2)
            .cell(par.missTransfers, 2)
            .cell(std::to_string(n))
            .cell(std::to_string(n));
    }
    for (unsigned n : {2u, 4u, 8u}) {
        const auto ser = measure(n, dramcache::LookupMode::Serial, "");
        char expect[16];
        std::snprintf(expect, sizeof expect, "%.1f", (n + 1) / 2.0);
        table.row()
            .cell("serial " + std::to_string(n) + "-way")
            .cell(ser.hitTransfers, 2)
            .cell(ser.missTransfers, 2)
            .cell(expect)
            .cell(std::to_string(n));
    }
    for (unsigned n : {2u, 4u, 8u}) {
        const auto wp =
            measure(n, dramcache::LookupMode::Predicted, "perfect");
        table.row()
            .cell("way-predicted " + std::to_string(n) + "-way")
            .cell(wp.hitTransfers, 2)
            .cell(wp.missTransfers, 2)
            .cell("1")
            .cell(std::to_string(n));
    }
    for (unsigned n : {4u, 8u}) {
        const auto sws =
            measure(n, dramcache::LookupMode::Predicted, "sws");
        table.row()
            .cell("SWS(" + std::to_string(n) + ",2) way-predicted")
            .cell(sws.hitTransfers, 2)
            .cell(sws.missTransfers, 2)
            .cell("~1")
            .cell("2");
    }

    return rep.finish();
}

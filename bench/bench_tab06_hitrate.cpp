/**
 * @file
 * Table VI: hit-rate impact of way steering on a 2-way cache.
 *
 * Expected shape (paper): direct-mapped 74.2%, unbiased 2-way 77.5%,
 * PWS 77.2% (trades a sliver of hit rate for predictability), GWS
 * 77.7%, PWS+GWS 77.3%.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table VI: hit rate under way steering",
        "Table VI (DM / 2-way random / PWS / GWS / PWS+GWS hit rate)");

    const std::vector<std::string> configs = {
        "dm", "2way-rand", "2way-pws", "2way-gws", "2way-pws+gws"};
    const char *labels[] = {"direct-mapped", "2-way rand", "2-way PWS",
                            "2-way GWS", "2-way PWS+GWS"};

    const bench::FunctionalSweep sweep(trace::mainWorkloadNames(),
                                       configs, rep.cli());

    report::ReportTable &table =
        rep.table("hit_rate", {"organization", "hit-rate (amean)"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const std::vector<double> hits = sweep.column(
            configs[c],
            [](const sim::SystemMetrics &m) { return m.hitRate; });
        table.row().cell(labels[c]).percent(amean(hits));
    }
    sweep.record(rep);
    return rep.finish();
}

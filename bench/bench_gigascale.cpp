/**
 * @file
 * Gigascale harness: the paper's full-scale system point — a 4GB DRAM
 * cache in front of 128GB PCM-class main memory — run WITHOUT the
 * footprint/cache scaling every other bench applies (DESIGN.md §2).
 *
 * At scale=1 the tag store alone spans 64M lines; a dense backend
 * would commit ~600MB of host memory before the first access.  The
 * paged state backend (src/common/paged_table.hpp) materializes only
 * the pages the bounded warm/timed quotas actually touch, so the full
 * fig12 point fits in a small, committed RSS budget.  This bench is
 * the proof: it runs the direct-mapped baseline plus one ACCORD
 * configuration at full scale through the sweep pool, reports the
 * fig12 speedup point, and records the resident-state footprint
 * against the dense-equivalent bytes in the volatile host partition.
 *
 * tools/check_memory_footprint.py validates the telemetry streams
 * (telemetry=<path>) against the committed budget
 * (tests/baselines/BUDGET_gigascale.json); the weekly CI gigascale
 * job wires the two together.
 *
 * Wall-clock-free, but the RSS numbers are host observations: like
 * bench_throughput, this bench is NOT part of the report-stability or
 * refactor-equivalence gates.
 */

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/telemetry/telemetry.hpp"

using namespace accord;

namespace
{

/**
 * Host bytes a dense backend would commit for this config's per-line
 * state: 8B tag + 1B flags per line, plus 8B LRU stamps per line for
 * the LRU ablation.  Policy/DCP tables are excluded, so the ratio
 * resident/dense the budget gates on is conservative (the denominator
 * is an underestimate).
 */
std::uint64_t
denseEquivalentBytes(const sim::SystemConfig &config)
{
    const std::uint64_t lines = config.cacheBytes() / 64;
    std::uint64_t per_line = 8 + 1;
    if (config.replacement == dramcache::L4Replacement::Lru)
        per_line += 8;
    return lines * per_line;
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv,
        "Gigascale: full-scale 4GB/128GB-PCM fig12 point in bounded "
        "RSS",
        "Fig 12 (one full-scale point, unscaled geometry)");

    const std::string workload =
        rep.cli().getString("workload", "libq");
    const std::string config_name =
        rep.cli().getString("config", "2way-pws+gws");

    // Full scale, bounded quotas: the point of the bench is the
    // geometry, not the stream length.  Quotas are deliberately small
    // enough that the touched-page footprint stays well inside the
    // committed budget; every default yields to the CLI.
    const auto atFullScale = [&rep](sim::SystemConfig config) {
        config.scale = 1;
        config.numCores = 4;
        config.warmPerCore = 40000;
        config.timedPerCore = 12000;
        config.runTimed = true;
        sim::applyCliOverrides(config, rep.cli());
        return config;
    };

    sim::SystemConfig base =
        atFullScale(sim::baselineConfig(workload));
    sim::SystemConfig accord =
        atFullScale(sim::namedConfig(workload, config_name));

    const std::vector<sim::SystemMetrics> metrics =
        sim::SweepRunner(rep.cli())
            .runConfigs({base, accord});
    const double speedup = sim::weightedSpeedup(metrics[1], metrics[0]);

    report::ReportTable &table = rep.table(
        "gigascale",
        {"run", "hit_rate", "resident_state_mb", "dense_equiv_mb",
         "resident_frac"});
    const std::pair<const char *, const sim::SystemConfig &> runs[] = {
        {"dm", base},
        {config_name.c_str(), accord},
    };
    for (std::size_t i = 0; i < 2; ++i) {
        const sim::SystemMetrics &m = metrics[i];
        const double dense =
            static_cast<double>(denseEquivalentBytes(runs[i].second));
        const double resident =
            static_cast<double>(m.residentStateBytes);
        table.row()
            .cell(std::string(runs[i].first))
            .percent(m.hitRate)
            .cell(resident / (1024.0 * 1024.0), 1)
            .cell(dense / (1024.0 * 1024.0), 1)
            .percent(dense > 0.0 ? resident / dense : 0.0);

        const std::string key =
            workload + "/" + std::string(runs[i].first);
        bench::recordRun(rep.report(), key, runs[i].second, m);
        rep.report().addRunHostValue(key, "dense_state_bytes", dense);
        rep.report().addRunHostValue(
            key, "resident_state_fraction",
            dense > 0.0 ? resident / dense : 0.0);
        // End-of-batch RSS: genuinely volatile, and recorded as such.
        rep.report().addRunHostValue(
            key, "rss_kb_after",
            static_cast<double>(telemetry::currentRssKb()));
    }
    rep.report().addRunValue(workload + "/" + config_name, "speedup",
                             speedup);

    rep.note("%s on %s at scale=1: speedup %.3f over dm",
             config_name.c_str(), workload.c_str(), speedup);
    rep.note("budget gate: tools/check_memory_footprint.py against "
             "tests/baselines/BUDGET_gigascale.json");
    return rep.finish();
}

/**
 * @file
 * Table VII: hit rate of the ACCORD designs as associativity grows
 * with Skewed Way-Steering.
 *
 * Expected shape (paper): DM 74.2% < ACCORD 2-way 77.3% < SWS(4,2)
 * 77.7% < SWS(8,2) 77.9% < full 8-way 79.7% — SWS recovers about a
 * third of the 2-way -> 8-way gap at two-probe miss-confirmation cost.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table VII: hit rate of ACCORD designs",
        "Table VII (DM / ACCORD 2-way / SWS(4,2) / SWS(8,2) / 8-way)");

    const std::vector<std::string> configs = {
        "dm", "2way-pws+gws", "4way-sws+gws", "8way-sws+gws",
        "8way-rand"};
    const char *labels[] = {"direct-mapped", "ACCORD (2-way)",
                            "SWS(4,2)", "SWS(8,2)", "8-way"};

    const bench::FunctionalSweep sweep(trace::mainWorkloadNames(),
                                       configs, rep.cli());

    report::ReportTable &table = rep.table(
        "sws_hit_rate", {"organization", "hit-rate (amean)",
                         "miss-confirm probes"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::vector<double> hits;
        double probes = 0.0;
        for (std::size_t w = 0; w < sweep.workloads().size(); ++w) {
            const auto &m = sweep.metrics(configs[c], w);
            hits.push_back(m.hitRate);
            probes += m.cacheStats.probesPerRead.max();
        }
        table.row()
            .cell(labels[c])
            .percent(amean(hits))
            .cell(probes / 21.0, 1);
    }
    return rep.finish();
}

/**
 * @file
 * Figure 14: speedup of way predictors and ACCORD for a 2-way cache.
 *
 * Expected shape (paper): ACCORD (320B SRAM) matches partial-tag (32MB
 * SRAM) and MRU (4MB SRAM) performance; the CA-cache degrades average
 * performance (-3.7%) because its swaps burn bandwidth even on
 * workloads that gain nothing from associativity.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 14: way-predictor speedups (2-way)",
        "Fig 14 (CA-cache / MRU / Partial-Tag / ACCORD speedup)");

    const bench::SpeedupSweep sweep(trace::mainWorkloadNames(),
                                    {"ca", "2way-mru", "2way-ptag",
                                     "2way-pws+gws"},
                                    rep.cli());
    sweep.addTable(rep, "wp_speedup");
    sweep.record(rep);
    rep.note("SRAM cost on the full 4GB cache: CA-cache 0, MRU 4MB, "
             "partial-tag 32MB, ACCORD 320 bytes.");

    return rep.finish();
}

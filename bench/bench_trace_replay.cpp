/**
 * @file
 * Sampled-vs-full replay accuracy: does SimPoint-style sampling
 * (trace/sample.hpp) reproduce full-stream statistics at a small
 * fraction of the events?
 *
 * For each workload the bench replays the same bounded request stream
 * twice through the functional pipeline — once in full, once through
 * SampledSource — and reports the measured hit rates, the replayed
 * event ratio, and the hit-rate error in percentage points.  Both
 * runs are fully deterministic (no wall clock anywhere), so the run
 * report is byte-stable and diffable against a golden baseline
 * (tests/baselines/, tools/check_trace_replay.sh).
 *
 * By default the stream is the synthetic model bounded to records=
 * requests; point tracefile= at an accord.trace/1 file to evaluate
 * sampling accuracy on a recorded trace instead.  Both runs consume
 * the first warm= records as an identical (unmeasured) warm phase —
 * the full run via warmPerCore, the sampled run because its prewarm
 * span replays exactly those records first — so the comparison is
 * steady state vs. steady state.  Keep prewarm == warm when
 * overriding samplespec=, or the warm phase will eat into the
 * selected windows.
 *
 * The default run (10M records) is the headline demonstration:
 * sampled replay within 2pp of the full-stream hit rate at under 5%
 * of its measured events, for every default workload (docs/TRACES.md
 * discusses the methodology and its limits).
 */

#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace accord;

namespace
{

/** Split a comma-separated workload list. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    std::string rest = text;
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        items.push_back(rest.substr(0, comma));
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
    }
    return items;
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv,
        "Sampled replay accuracy: SimPoint-style sampling vs. full "
        "replay",
        "sampling validation (no paper figure)");

    const std::vector<std::string> workloads =
        splitList(rep.cli().getString("workloads", "libq,omnet,mcf"));
    const std::string config_name =
        rep.cli().getString("config", "2way-pws+gws");
    const std::uint64_t records =
        rep.cli().getUint("records", 10'000'000);
    const std::uint64_t warm =
        rep.cli().getUint("warm", records * 2 / 5);
    const std::string tracefile =
        rep.cli().getString("tracefile", "");
    const std::string sample_spec = rep.cli().getString(
        "samplespec",
        "window=4096,clusters=12,rate=0.02,warmup=1024,prewarm="
            + std::to_string(warm));

    report::ReportTable &replay_table = rep.table(
        "replay",
        {"workload", "mode", "accesses", "hit-rate", "wp-acc"});
    report::ReportTable &sampling_table = rep.table(
        "sampling",
        {"workload", "full_acc", "sampled_acc", "event_ratio",
         "hitrate_delta_pp"});

    for (const std::string &workload : workloads) {
        // Both runs replay the same bounded stream, single-core, to
        // exhaustion.  The warm phase consumes the first warm=
        // records in both: the full run via warmPerCore directly, the
        // sampled run because its prewarm span replays exactly those
        // records first — so measurement starts from identical cache
        // state and the comparison is steady-state vs. steady-state.
        sim::SystemConfig config =
            sim::namedConfig(workload, config_name);
        config.runTimed = false;
        config.numCores = 1;
        config.warmPerCore = warm;
        config.measurePerCore = 0;
        sim::applyCliOverrides(config, rep.cli());
        config.trafficSpec = tracefile.empty()
            ? "synthetic(limit=" + std::to_string(records) + ")"
            : "trace(file=" + tracefile + ",loop=0,stripe=0)";

        sim::SystemConfig full_config = config;
        full_config.sampleSpec.clear();
        const sim::SystemMetrics full = sim::runSystem(full_config);

        sim::SystemConfig sampled_config = config;
        sampled_config.sampleSpec = sample_spec;
        const sim::SystemMetrics sampled =
            sim::runSystem(sampled_config);

        const auto ratio = full.accessesExecuted > 0
            ? static_cast<double>(sampled.accessesExecuted)
                / static_cast<double>(full.accessesExecuted)
            : 0.0;
        const double delta_pp =
            (sampled.hitRate - full.hitRate) * 100.0;

        replay_table.row()
            .cell(workload)
            .cell("full")
            .cell(full.accessesExecuted)
            .percent(full.hitRate)
            .percent(full.wpAccuracy);
        replay_table.row()
            .cell(workload)
            .cell("sampled")
            .cell(sampled.accessesExecuted)
            .percent(sampled.hitRate)
            .percent(sampled.wpAccuracy);
        sampling_table.row()
            .cell(workload)
            .cell(full.accessesExecuted)
            .cell(sampled.accessesExecuted)
            .cell(ratio, 4)
            .cell(delta_pp, 3);

        bench::recordRun(rep.report(), workload + "/full",
                         full_config, full);
        bench::recordRun(rep.report(), workload + "/sampled",
                         sampled_config, sampled);
        rep.report().addRunValue(workload + "/sampled", "event_ratio",
                                 ratio);
        rep.report().addRunValue(workload + "/sampled",
                                 "hitrate_delta_pp", delta_pp);
    }

    rep.note("sampled replay spec: %s", sample_spec.c_str());
    return rep.finish();
}

/**
 * @file
 * Figure 13: speedup of extending ACCORD to higher associativity with
 * Skewed Way-Steering.
 *
 * Expected shape (paper): SWS(8,2) > SWS(4,2) > ACCORD 2-way on
 * average (10.6% / ~9% / 7.3%), with sphinx degrading slightly under
 * SWS(8,2) because it is already cache-resident and only sees the
 * extra bandwidth / row-buffer pressure.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 13: ACCORD with Skewed Way-Steering",
        "Fig 13 (ACCORD 2-way / SWS(4,2) / SWS(8,2) speedup)");

    const bench::SpeedupSweep sweep(trace::mainWorkloadNames(),
                                    {"2way-pws+gws", "4way-sws+gws",
                                     "8way-sws+gws"},
                                    rep.cli());
    sweep.addTable(rep, "sws_speedup");
    sweep.record(rep);

    return rep.finish();
}

/**
 * @file
 * Host-side throughput harness: how fast does the simulator simulate?
 *
 * Unlike every other bench (which regenerates a paper table/figure and
 * must be byte-stable), this one measures wall-clock performance of
 * the engine itself: simulated demand reads per host second and —
 * for timed runs — discrete events executed per host second, across
 * three harness modes:
 *
 *   warm    functional-only run (untimed warm + measurement phases)
 *   timed   full timed run (the event-queue/controller hot path)
 *   traced  timed run with the transaction tracer attached
 *   replay  functional replay of an accord.trace/1 binary trace
 *           (trace decode + functional shell, no generator)
 *   telem   timed run with the flight recorder streaming heartbeats
 *           (telemetry-enabled cost; "timed" is the telemetry-off
 *           control, so timed/telem bounds the recorder overhead —
 *           the telemetry_overhead_frac run value records the ratio)
 *   paged   timed run with the storage backend forced paged
 *           (state_backend=paged at bench scale, where auto picks
 *           dense — so timed/paged bounds the paged read path's
 *           indirection cost; the paged_overhead_frac run value
 *           records the ratio)
 *
 * Each mode runs `reps=` times (default 3) and the report records the
 * best rep, so transient host noise cannot fake a regression.  The
 * committed baseline (BENCH_throughput.json) and the CI gate
 * (tools/check_perf_regression.py) build on the `*_per_sec_best`
 * run values emitted here; docs/PERFORMANCE.md explains the policy.
 *
 * The wall-clock values obviously differ host-to-host and run-to-run,
 * so this bench is deliberately NOT part of the report-stability or
 * refactor-equivalence gates.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "trace/bintrace.hpp"
#include "trace/generator.hpp"

using namespace accord;

namespace
{

/** One harness mode: which phases run and whether tracing is on. */
struct Mode
{
    const char *name;
    bool timed;
    bool traced;
    bool replay;
    bool telemetry;
    bool paged;
};

constexpr Mode kModes[] = {
    {"warm", false, false, false, false, false},
    {"timed", true, false, false, false, false},
    {"traced", true, true, false, false, false},
    {"replay", false, false, true, false, false},
    {"telem", true, false, false, true, false},
    {"paged", true, false, false, false, true},
};

/**
 * Record a bounded accord.trace/1 trace from the workload's synthetic
 * model, so the replay mode times trace decode + functional shell on
 * the same stream the other modes generate inline.
 */
std::string
recordReplayTrace(const std::string &workload, std::uint64_t records,
                  std::uint64_t scale)
{
    const std::string path = "/tmp/accord_bench_replay_"
        + std::to_string(::getpid()) + ".trc";
    const auto &spec = *trace::coreAssignment(workload, 1)[0];
    const auto params = trace::generatorParams(spec, 0, 1, scale, 1);
    trace::WorkloadGen gen(params);
    trace::WritebackMixer mixer(gen, spec.wbFrac, 2048, 7);
    trace::BinTraceWriter writer(path);
    for (std::uint64_t i = 0; i < records; ++i)
        writer.append(mixer.next());
    writer.close();
    return path;
}

/** One repetition's wall-clock measurements. */
struct Rep
{
    double wallSec = 0.0;
    double reads = 0.0;
    double events = 0.0;

    double readsPerSec() const
        { return wallSec > 0.0 ? reads / wallSec : 0.0; }
    double eventsPerSec() const
        { return wallSec > 0.0 ? events / wallSec : 0.0; }
};

/** Run one configuration once and time it end to end. */
Rep
timeOne(const sim::SystemConfig &config)
{
    // accord-lint: allow(wallclock) host-side timing harness; wall
    // time never feeds a canonical run report
    const auto start = std::chrono::steady_clock::now();
    const sim::SystemMetrics m = sim::runSystem(config);
    // accord-lint: allow(wallclock) host-side timing harness
    const auto stop = std::chrono::steady_clock::now();

    Rep rep;
    rep.wallSec = std::chrono::duration<double>(stop - start).count();
    rep.reads = static_cast<double>(m.cacheStats.readHits.total());
    rep.events = static_cast<double>(m.eventsExecuted);
    return rep;
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv,
        "Host throughput: simulated reads/sec and events/sec",
        "performance harness (no paper figure)");

    const std::string workload =
        rep.cli().getString("workload", "libq");
    const std::string config_name =
        rep.cli().getString("config", "2way-pws+gws");
    const auto reps =
        static_cast<unsigned>(rep.cli().getUint("reps", 3));
    const std::uint64_t trace_records =
        rep.cli().getUint("trace_records", 4'000'000);

    const std::string trace_path = recordReplayTrace(
        workload, trace_records, rep.cli().getUint("scale", 128));

    report::ReportTable &table = rep.table(
        "throughput",
        {"mode", "rep", "wall_s", "reads", "reads/s", "events",
         "events/s"});

    double timed_best_rps = 0.0;
    double telem_best_rps = 0.0;
    double paged_best_rps = 0.0;

    for (const Mode &mode : kModes) {
        sim::SystemConfig config =
            sim::namedConfig(workload, config_name);
        config.runTimed = mode.timed;
        if (mode.traced) {
            // Exercise the tracer hot path without keeping (or
            // writing) the full trace: bounded ring, bit-bucket sink.
            config.tracePath = "/dev/null";
            config.traceCap = 4096;
        }
        sim::applyCliOverrides(config, rep.cli());
        if (mode.telemetry) {
            // Heartbeats at the default cadence into a bit-bucket:
            // times the recorder hot path (sampling + JSON encode +
            // flush) without leaving a stream behind.
            config.telemetryPath = "/dev/null";
            config.telemetryInterval = 0;
        }
        if (mode.replay) {
            // Cold single-pass replay striped over the cores: decode
            // throughput plus the functional shell, nothing else.
            config.runTimed = false;
            config.warmPerCore = 0;
            config.measurePerCore = 0;
            config.trafficSpec =
                "trace(file=" + trace_path + ",loop=0,stripe=1)";
        }
        if (mode.paged) {
            // Force the paged storage backend at bench scale (where
            // auto picks dense): times the paged read path's page
            // indirection against the dense "timed" control.
            config.stateBackend = dramcache::StateBackend::Paged;
        }

        Rep best;
        for (unsigned r = 0; r < reps; ++r) {
            const Rep sample = timeOne(config);
            table.row()
                .cell(std::string(mode.name))
                .cell(static_cast<std::uint64_t>(r))
                .cell(sample.wallSec, 3)
                .cell(sample.reads, 0)
                .cell(sample.readsPerSec(), 0)
                .cell(sample.events, 0)
                .cell(sample.eventsPerSec(), 0);
            if (sample.readsPerSec() > best.readsPerSec())
                best = sample;
        }
        table.row()
            .cell(std::string(mode.name) + " best")
            .cell(static_cast<std::uint64_t>(reps))
            .cell(best.wallSec, 3)
            .cell(best.reads, 0)
            .cell(best.readsPerSec(), 0)
            .cell(best.events, 0)
            .cell(best.eventsPerSec(), 0);

        // The regression gate keys off these run values; the spec
        // documents the simulated configuration they were measured on.
        const std::string key =
            workload + "/" + std::string(mode.name);
        report::RunReport &report = rep.report();
        report.setRunSpec(key, sim::canonicalConfigSpec(config));
        report.addRunValue(key, "reps",
                           static_cast<double>(reps));
        report.addRunValue(key, "wall_s_best", best.wallSec);
        report.addRunValue(key, "reads_per_sec_best",
                           best.readsPerSec());
        if (mode.timed)
            report.addRunValue(key, "events_per_sec_best",
                               best.eventsPerSec());
        if (std::string(mode.name) == "timed")
            timed_best_rps = best.readsPerSec();
        if (mode.telemetry)
            telem_best_rps = best.readsPerSec();
        if (mode.paged)
            paged_best_rps = best.readsPerSec();
    }

    // Informational (not gated — the name avoids the *_per_sec_best
    // suffix): fraction of timed throughput lost with the flight
    // recorder on.  The contract is <= 1%; the hard floor is already
    // enforced by the telem mode's own reads_per_sec_best gate.
    if (timed_best_rps > 0.0 && telem_best_rps > 0.0) {
        const std::string key = workload + "/telem";
        rep.report().addRunValue(
            key, "telemetry_overhead_frac",
            1.0 - telem_best_rps / timed_best_rps);
    }

    // Same shape for the storage layer: fraction of timed throughput
    // lost with the paged backend forced (informational; the paged
    // mode's own reads_per_sec_best is the gated floor).
    if (timed_best_rps > 0.0 && paged_best_rps > 0.0) {
        const std::string key = workload + "/paged";
        rep.report().addRunValue(
            key, "paged_overhead_frac",
            1.0 - paged_best_rps / timed_best_rps);
    }

    std::remove(trace_path.c_str());
    rep.note("best-of-%u reps per mode; regression gate: "
             "tools/check_perf_regression.py", reps);
    return rep.finish();
}

/**
 * @file
 * Figure 12: speedup of ACCORD (2-way and SWS(8,2)) over all 46
 * workloads, including the ones that are not sensitive to memory or
 * associativity, sorted as the paper's S-curve.
 *
 * Expected shape (paper): ~4%/6% average over all workloads, ~7%/11%
 * on the mixes, and — crucially — no meaningful degradation on the
 * insensitive workloads.
 */

#include <algorithm>

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 12: ACCORD across all 46 workloads",
        "Fig 12 (ACCORD 2-way and SWS(8,2) S-curves)");

    const bench::SpeedupSweep sweep(trace::allWorkloadNames(),
                                    {"2way-pws+gws", "8way-sws+gws"},
                                    rep.cli());

    // S-curve: per-config speedups in ascending order.
    for (const auto &config : sweep.configs()) {
        std::vector<std::pair<double, std::string>> curve;
        for (std::size_t w = 0; w < sweep.workloads().size(); ++w)
            curve.emplace_back(sweep.speedup(config, w),
                               sweep.workloads()[w]);
        std::sort(curve.begin(), curve.end());

        report::ReportTable &table = rep.table(
            "s_curve_" + config, {"rank", "workload", "speedup"});
        for (std::size_t i = 0; i < curve.size(); ++i) {
            table.row()
                .cell(static_cast<std::uint64_t>(i + 1))
                .cell(curve[i].second)
                .cell(curve[i].first, 3);
        }
    }

    // Averages: all workloads and the 10 mixes.
    for (const auto &config : sweep.configs()) {
        std::vector<double> all, mixes;
        for (std::size_t w = 0; w < sweep.workloads().size(); ++w) {
            all.push_back(sweep.speedup(config, w));
            if (trace::isMix(sweep.workloads()[w]))
                mixes.push_back(sweep.speedup(config, w));
        }
        rep.note("%s: gmean(all 46) = %.3f, gmean(10 mixes) = %.3f",
                 config.c_str(), geomean(all), geomean(mixes));
    }

    return rep.finish();
}

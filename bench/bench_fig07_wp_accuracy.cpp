/**
 * @file
 * Figure 7: way-prediction accuracy of PWS, GWS, and PWS+GWS per
 * workload on a 2-way cache.
 *
 * Expected shape (paper): PWS ~83% everywhere (= PIP); GWS near-ideal
 * on spatially local workloads (libq, nekbone ~99%) but ~50% on sparse
 * ones (mcf, pr_twi); PWS+GWS ~90% overall.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 7: way-prediction accuracy (2-way)",
        "Fig 7 (accuracy of Rand / PWS / GWS / PWS+GWS per workload)");

    const bench::FunctionalSweep sweep(
        trace::mainWorkloadNames(),
        {"2way-rand", "2way-pws", "2way-gws", "2way-pws+gws"},
        rep.cli());

    report::ReportTable &table = rep.table(
        "wp_accuracy", {"workload", "rand", "pws", "gws", "pws+gws"});
    std::vector<double> rand_acc, pws_acc, gws_acc, both_acc;
    for (std::size_t w = 0; w < sweep.workloads().size(); ++w) {
        const double r = sweep.metrics("2way-rand", w).wpAccuracy;
        const double p = sweep.metrics("2way-pws", w).wpAccuracy;
        const double g = sweep.metrics("2way-gws", w).wpAccuracy;
        const double b = sweep.metrics("2way-pws+gws", w).wpAccuracy;
        rand_acc.push_back(r);
        pws_acc.push_back(p);
        gws_acc.push_back(g);
        both_acc.push_back(b);
        table.row().cell(sweep.workloads()[w]).percent(r).percent(p)
            .percent(g).percent(b);
    }
    table.row()
        .cell("amean")
        .percent(amean(rand_acc))
        .percent(amean(pws_acc))
        .percent(amean(gws_acc))
        .percent(amean(both_acc));
    return rep.finish();
}

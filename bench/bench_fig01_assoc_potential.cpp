/**
 * @file
 * Figure 1: the associativity opportunity and the cost of naive
 * lookup.  (a) hit rate at 1/2/4/8 ways; (b) speedup of a parallel
 * lookup design; (c) speedup of an idealized set-associative design
 * with the bandwidth and latency of a direct-mapped cache.
 *
 * Expected shape (paper): hit rate 74% -> 80% from 1 to 8 ways;
 * parallel lookup DEGRADES performance at higher associativity while
 * the idealized design gains ~21% at 8 ways.
 */

#include "bench_common.hpp"

using namespace accord;
using bench::SpeedupSweep;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Figure 1: impact of set associativity",
        "Fig 1(a) hit rate, Fig 1(b) parallel lookup, Fig 1(c) "
        "idealized lookup");
    const Config &cli = rep.cli();

    const auto workloads = trace::mainWorkloadNames();

    // (a) hit rate by associativity (functional, long streams).
    {
        std::vector<double> rates[4];
        const char *configs[4] = {"dm", "2way-rand", "4way-rand",
                                  "8way-rand"};
        for (const auto &workload : workloads) {
            for (int i = 0; i < 4; ++i)
                rates[i].push_back(
                    bench::runFunctional(workload, configs[i], cli)
                        .hitRate);
        }
        report::ReportTable &table = rep.table(
            "hit_rate_vs_ways", {"ways", "hit-rate (amean)"});
        const char *labels[4] = {"1-way", "2-way", "4-way", "8-way"};
        for (int i = 0; i < 4; ++i)
            table.row().cell(labels[i]).percent(amean(rates[i]));
    }

    // (b)+(c) speedups of parallel and idealized designs.
    {
        SpeedupSweep sweep(workloads,
                           {"2way-parallel", "4way-parallel",
                            "8way-parallel", "2way-ideal", "4way-ideal",
                            "8way-ideal"},
                           cli);
        report::ReportTable &table = rep.table(
            "lookup_speedup",
            {"ways", "parallel (b)", "idealized (c)"});
        table.row()
            .cell("2-way")
            .cell(sweep.gmean("2way-parallel"), 3)
            .cell(sweep.gmean("2way-ideal"), 3);
        table.row()
            .cell("4-way")
            .cell(sweep.gmean("4way-parallel"), 3)
            .cell(sweep.gmean("4way-ideal"), 3);
        table.row()
            .cell("8-way")
            .cell(sweep.gmean("8way-parallel"), 3)
            .cell(sweep.gmean("8way-ideal"), 3);
    }

    return rep.finish();
}

/**
 * @file
 * Table VIII: sensitivity of ACCORD's speedup to DRAM cache size
 * (1GB to 8GB at full scale, footprints held constant).
 *
 * Expected shape (paper): speedup shrinks monotonically as the cache
 * grows (13.6% at 1GB down to 8.6% at 8GB) because larger caches
 * absorb more of the working set and leave less for associativity.
 */

#include "bench_common.hpp"

using namespace accord;

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table VIII: sensitivity to cache size",
        "Table VIII (ACCORD SWS(8,2) speedup vs 1/2/4/8 GB cache)");
    const Config &cli = rep.cli();

    report::ReportTable &table = rep.table(
        "cache_size", {"cache size", "accord speedup (gmean)"});
    for (const std::uint64_t gb : {1ULL, 2ULL, 4ULL, 8ULL}) {
        std::vector<double> speedups;
        for (const auto &workload : trace::mainWorkloadNames()) {
            sim::SystemConfig base = sim::baselineConfig(workload);
            sim::applyCliOverrides(base, cli);
            base.fullCacheBytes = gb << 30;
            const auto base_metrics = sim::runSystem(base);

            sim::SystemConfig accord =
                sim::namedConfig(workload, "8way-sws+gws");
            sim::applyCliOverrides(accord, cli);
            accord.fullCacheBytes = gb << 30;
            const auto m = sim::runSystem(accord);
            speedups.push_back(sim::weightedSpeedup(m, base_metrics));
        }
        table.row()
            .cell(std::to_string(gb) + ".0GB")
            .cell(geomean(speedups), 3);
    }
    return rep.finish();
}

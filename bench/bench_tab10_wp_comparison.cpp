/**
 * @file
 * Table X: accuracy/storage comparison of the CA-cache, MRU and
 * partial-tag predictors, and ACCORD at 2/4/8 ways.
 *
 * Expected shape (paper): CA-cache ~85% first-probe rate (2-way
 * equivalent only); MRU decays 86->63% with ways; partial tags decay
 * 97->81%; ACCORD holds ~90% at every associativity because SWS keeps
 * the prediction problem 2-way.
 */

#include "bench_common.hpp"

using namespace accord;

namespace
{

double
meanAccuracy(const std::string &config_name, const Config &cli)
{
    std::vector<double> acc;
    for (const auto &workload : trace::mainWorkloadNames())
        acc.push_back(
            bench::runFunctional(workload, config_name, cli)
                .wpAccuracy);
    return amean(acc);
}

} // namespace

int
main(int argc, char **argv)
{
    report::Reporter rep(
        argc, argv, "Table X: way-predictor comparison",
        "Table X (CA-cache / MRU / Partial-Tag / ACCORD accuracy)");
    const Config &cli = rep.cli();

    report::ReportTable &table = rep.table(
        "wp_comparison", {"ways", "ca-cache", "mru", "ptag", "accord"});

    const double ca2 = meanAccuracy("ca", cli);
    for (unsigned ways : {2u, 4u, 8u}) {
        const std::string w = std::to_string(ways);
        const std::string accord =
            ways == 2 ? "2way-pws+gws" : w + "way-sws+gws";
        table.row().cell(w + "-way");
        if (ways == 2)
            table.percent(ca2);
        else
            table.cell("n/a");
        table
            .percent(meanAccuracy(w + "way-mru", cli))
            .percent(meanAccuracy(w + "way-ptag", cli))
            .percent(meanAccuracy(accord, cli));
    }
    rep.note("CA-cache first-probe hit rate (2-way equivalent): "
             "%.1f%%", ca2 * 100.0);
    rep.note("Storage (4GB cache): CA 0MB, MRU 4MB, partial-tag 32MB, "
             "ACCORD 320 bytes (see bench_tab09).");

    return rep.finish();
}
